//! The simulated-thread context API.
//!
//! Code running inside a simulated thread uses these free functions to
//! spend virtual time, reference simulated memory, park/unpark, and spawn
//! further threads. They all panic with a clear message when called from
//! outside a simulation (use [`in_sim`] to probe).

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, MutexGuard};

use crate::config::{NodeId, ProcId, SimConfig};
use crate::engine::{spawn_thread, Shared, ShutdownToken};
use crate::gate::Gate;
use crate::tcb::{CostMeter, TState, ThreadId, WakeReason};
use crate::time::{Duration, VirtualTime};
use crate::world::{EvKind, World};

struct Ctx {
    shared: Arc<Shared>,
    tid: ThreadId,
    proc: ProcId,
    gate: Arc<Gate>,
    processors: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn install(shared: Arc<Shared>, tid: ThreadId, proc: ProcId, gate: Arc<Gate>) {
    let processors = shared.world.lock().unwrap().cfg.processors;
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared,
            tid,
            proc,
            gate,
            processors,
        });
    });
}

pub(crate) fn clear() {
    CTX.with(|c| *c.borrow_mut() = None);
}

fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b
            .as_ref()
            .expect("this operation is only valid inside a simulated thread (butterfly_sim::run)");
        f(ctx)
    })
}

/// Whether the calling OS thread is currently a simulated thread.
pub fn in_sim() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Id of the current simulated thread.
pub fn current() -> ThreadId {
    with_ctx(|c| c.tid)
}

/// Processor the current thread is pinned to.
pub fn current_proc() -> ProcId {
    with_ctx(|c| c.proc)
}

/// Memory node local to the current thread's processor.
pub fn current_node() -> NodeId {
    with_ctx(|c| c.proc.node())
}

/// Number of processors in the simulated machine.
pub fn num_processors() -> usize {
    with_ctx(|c| c.processors)
}

/// Current virtual time.
pub fn now() -> VirtualTime {
    with_ctx(|c| c.shared.world.lock().unwrap().now)
}

/// A copy of the run's configuration.
pub fn config() -> SimConfig {
    with_ctx(|c| c.shared.world.lock().unwrap().cfg.clone())
}

/// Deterministic pseudo-random value from the run-wide stream.
pub fn rand_u64() -> u64 {
    with_ctx(|c| c.shared.world.lock().unwrap().rand_u64())
}

/// Snapshot of the current thread's memory-traffic counters.
pub fn cost_meter() -> CostMeter {
    with_ctx(|c| c.shared.world.lock().unwrap().tcb(c.tid).meter)
}

/// Hand control to the engine and wait to be resumed. Must be entered with
/// the world lock released and the current thread's continuation already
/// scheduled (event pushed / queued / waiting for unpark).
fn yield_cpu(c: &Ctx) {
    c.shared.engine_gate.open();
    c.gate.pass();
    if c.shared.shutdown.load(Ordering::Acquire) {
        std::panic::resume_unwind(Box::new(ShutdownToken));
    }
}

/// Core of `advance`: account `d`, then either bump the clock in place
/// (fast path: nothing else can happen before we finish) or schedule a
/// `Resume` and hand control back to the engine.
fn advance_locked(c: &Ctx, mut w: MutexGuard<'_, World>, d: Duration) {
    w.charge_time(c.tid, d);
    let target = w.now + d;
    let mut preempt = w.should_preempt(c.tid);
    // Schedule noise: force a preemption at this simulator call even
    // though the quantum has not expired. The flag is consumed when the
    // engine requeues us at the `Resume` event.
    if !preempt && w.noise_preempt() {
        w.tcb_mut(c.tid).force_preempt = true;
        preempt = true;
    }
    if !preempt && w.peek_time().is_none_or(|t| t > target) {
        w.now = target;
        w.stats.fast_advances += 1;
        return;
    }
    w.push_event(target, EvKind::Resume(c.tid));
    w.tcb_mut(c.tid).state = TState::Advancing;
    drop(w);
    yield_cpu(c);
}

/// Spend `d` of processor time (pure computation; the processor stays
/// held). This is also the preemption point: a thread that has exhausted
/// its quantum is moved to the back of its run queue here if another
/// thread is ready on the same processor.
pub fn advance(d: Duration) {
    with_ctx(|c| {
        let w = c.shared.world.lock().unwrap();
        advance_locked(c, w, d);
    })
}

/// Kind of simulated memory reference, for [`charge_mem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// A single-word read.
    Read,
    /// A single-word write.
    Write,
    /// An atomic read-modify-write (e.g. the Butterfly's `atomior`).
    Rmw,
}

/// Charge the current thread for a memory reference against memory homed
/// at `home`, applying the NUMA cost model and updating traffic meters.
/// Custom data structures built on top of the simulator should call this
/// once per simulated word they touch.
pub fn charge_mem(op: MemOp, home: NodeId) {
    with_ctx(|c| {
        let mut w = c.shared.world.lock().unwrap();
        let from = c.proc.node();
        let local = from == home;
        let mut d = match op {
            MemOp::Read => w.cfg.memory.read_cost(from, home),
            MemOp::Write => w.cfg.memory.write_cost(from, home),
            MemOp::Rmw => w.cfg.memory.rmw_cost(from, home),
        };
        // Interconnect distance beyond the flat remote base cost.
        d += w.cfg.topology.extra_latency(from, home);
        // Memory-module queueing: wait for the module to drain, then
        // occupy it (hot-spot contention, RMWs hold it longest).
        if w.cfg.module_occupancy > Duration::ZERO && home.0 < w.module_busy.len() {
            let wait = w.module_busy[home.0].saturating_since(w.now);
            let occupancy = match op {
                MemOp::Rmw => w.cfg.module_occupancy * 2,
                _ => w.cfg.module_occupancy,
            };
            w.module_busy[home.0] = w.now + wait + occupancy;
            d += wait;
        }
        {
            let meter = &mut w.tcb_mut(c.tid).meter;
            bump(meter, op, local);
        }
        bump(&mut w.mem_stats, op, local);
        advance_locked(c, w, d);
    })
}

fn bump(m: &mut CostMeter, op: MemOp, local: bool) {
    match (op, local) {
        (MemOp::Read, true) => m.reads_local += 1,
        (MemOp::Read, false) => m.reads_remote += 1,
        (MemOp::Write, true) => m.writes_local += 1,
        (MemOp::Write, false) => m.writes_remote += 1,
        (MemOp::Rmw, true) => {
            m.reads_local += 1;
            m.writes_local += 1;
            m.rmws += 1;
        }
        (MemOp::Rmw, false) => {
            m.reads_remote += 1;
            m.writes_remote += 1;
            m.rmws += 1;
        }
    }
}

/// Voluntarily yield the processor to the next ready thread on the same
/// processor (no-op when the run queue is empty).
pub fn yield_now() {
    with_ctx(|c| {
        let mut w = c.shared.world.lock().unwrap();
        if w.procs[c.proc.0].ready.is_empty() {
            return;
        }
        w.requeue(c.tid);
        drop(w);
        yield_cpu(c);
    })
}

/// Release the processor and sleep for `d` of virtual time.
pub fn sleep(d: Duration) {
    with_ctx(|c| {
        let mut w = c.shared.world.lock().unwrap();
        let epoch = {
            let tcb = w.tcb_mut(c.tid);
            tcb.park_epoch += 1;
            tcb.state = TState::Sleeping;
            tcb.park_epoch
        };
        w.release_processor(c.tid);
        let at = w.now + d + w.noise_wake_delay();
        w.push_event(at, EvKind::Wake { tid: c.tid, epoch });
        drop(w);
        yield_cpu(c);
    })
}

/// Release the processor and block until another thread calls [`unpark`]
/// for this thread. Consumes a pending unpark permit immediately, like
/// `std::thread::park`.
pub fn park() -> WakeReason {
    park_inner(None)
}

/// [`park`] with a timeout: resumes after `d` even without an unpark.
/// The returned [`WakeReason`] says which happened first.
pub fn park_timeout(d: Duration) -> WakeReason {
    park_inner(Some(d))
}

fn park_inner(timeout: Option<Duration>) -> WakeReason {
    with_ctx(|c| {
        let mut w = c.shared.world.lock().unwrap();
        {
            let tcb = w.tcb_mut(c.tid);
            if tcb.park_permit {
                tcb.park_permit = false;
                return WakeReason::Unparked;
            }
            tcb.park_epoch += 1;
            tcb.state = TState::Blocked;
        }
        let epoch = w.tcb(c.tid).park_epoch;
        w.release_processor(c.tid);
        if let Some(d) = timeout {
            let at = w.now + d + w.noise_wake_delay();
            w.push_event(at, EvKind::Wake { tid: c.tid, epoch });
        }
        drop(w);
        yield_cpu(c);
        c.shared.world.lock().unwrap().tcb(c.tid).wake_reason
    })
}

/// Make a blocked thread ready; if it is not currently parked, leave a
/// permit that its next [`park`] will consume (semantics of
/// `std::thread::Thread::unpark`).
pub fn unpark(target: ThreadId) {
    with_ctx(|c| {
        let mut w = c.shared.world.lock().unwrap();
        assert!(target.0 < w.tcbs.len(), "unpark of unknown thread {}", target);
        match w.tcb(target).state {
            TState::Blocked => w.make_ready(target, WakeReason::Unparked),
            TState::Finished => {}
            _ => w.tcb_mut(target).park_permit = true,
        }
    })
}

/// Spawn a new simulated thread pinned to `proc`. The spawning thread is
/// charged the configured thread-creation cost. Returns the new thread's
/// id (use higher-level join primitives from the `cthreads` crate to wait
/// for completion and collect results).
pub fn spawn<F>(proc: ProcId, name: impl Into<String>, f: F) -> ThreadId
where
    F: FnOnce() + Send + 'static,
{
    with_ctx(|c| {
        let tid = spawn_thread(&c.shared, proc, name.into(), f);
        let w = c.shared.world.lock().unwrap();
        let d = w.cfg.thread_create;
        advance_locked(c, w, d);
        tid
    })
}
