//! Simulated NUMA shared memory.
//!
//! Every value lives on a *home node* (a memory module co-located with one
//! processor). References from other nodes traverse the simulated switch
//! and cost more, per [`crate::config::MemoryParams`]. Two primitives are
//! offered:
//!
//! * [`SimCell`] — a shared word/record of any `Clone` type, with read /
//!   write / update operations charged as 1R / 1W / 1R+1W.
//! * [`SimWord`] — a shared 64-bit word with the atomic operations the
//!   Butterfly hardware provides (`atomior`, i.e. atomic fetch-or, plus
//!   the usual fetch-add / compare-exchange family), charged as RMWs.
//!
//! Because the engine serializes simulated threads, interior state is kept
//! behind a host `Mutex` purely to satisfy `Sync`; it is never contended
//! for longer than one operation.

use std::sync::{Arc, Mutex};

use crate::config::NodeId;
use crate::ctx::{self, MemOp};

/// A shared value homed on a specific memory node.
///
/// Cloning a `SimCell` clones the *handle*; all clones refer to the same
/// simulated memory.
#[derive(Debug)]
pub struct SimCell<T> {
    inner: Arc<CellInner<T>>,
}

#[derive(Debug)]
struct CellInner<T> {
    home: NodeId,
    val: Mutex<T>,
}

impl<T> Clone for SimCell<T> {
    fn clone(&self) -> Self {
        SimCell {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> SimCell<T> {
    /// Allocate on an explicit node.
    pub fn new_on(home: NodeId, value: T) -> SimCell<T> {
        SimCell {
            inner: Arc::new(CellInner {
                home,
                val: Mutex::new(value),
            }),
        }
    }

    /// Allocate on the calling thread's node (must be inside a sim).
    pub fn new_local(value: T) -> SimCell<T> {
        SimCell::new_on(ctx::current_node(), value)
    }

    /// The node this cell's memory lives on.
    pub fn home(&self) -> NodeId {
        self.inner.home
    }

    /// Read the value (charged as one read).
    pub fn read(&self) -> T
    where
        T: Clone,
    {
        ctx::charge_mem(MemOp::Read, self.inner.home);
        self.inner.val.lock().unwrap().clone()
    }

    /// Overwrite the value (charged as one write).
    pub fn write(&self, value: T) {
        ctx::charge_mem(MemOp::Write, self.inner.home);
        *self.inner.val.lock().unwrap() = value;
    }

    /// Read-modify-write under the engine's serialization (charged as one
    /// read plus one write). Returns the closure's result.
    ///
    /// Note: this models a *record update by the exclusive holder* (e.g.
    /// a queue manipulation inside a critical section), not a hardware
    /// atomic; use [`SimWord`] for lock-free words.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        ctx::charge_mem(MemOp::Read, self.inner.home);
        ctx::charge_mem(MemOp::Write, self.inner.home);
        f(&mut self.inner.val.lock().unwrap())
    }

    /// Inspect without charging simulated cost. For monitors/assertions
    /// that are *about* the simulation rather than *in* it.
    pub fn peek(&self) -> T
    where
        T: Clone,
    {
        self.inner.val.lock().unwrap().clone()
    }

    /// Mutate without charging simulated cost (out-of-band setup).
    pub fn poke(&self, f: impl FnOnce(&mut T)) {
        f(&mut self.inner.val.lock().unwrap());
    }
}

/// A shared 64-bit word with Butterfly-style atomic operations.
#[derive(Debug)]
pub struct SimWord {
    inner: Arc<WordInner>,
}

#[derive(Debug)]
struct WordInner {
    home: NodeId,
    val: Mutex<u64>,
}

impl Clone for SimWord {
    fn clone(&self) -> Self {
        SimWord {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl SimWord {
    /// Allocate on an explicit node.
    pub fn new_on(home: NodeId, value: u64) -> SimWord {
        SimWord {
            inner: Arc::new(WordInner {
                home,
                val: Mutex::new(value),
            }),
        }
    }

    /// Allocate on the calling thread's node (must be inside a sim).
    pub fn new_local(value: u64) -> SimWord {
        SimWord::new_on(ctx::current_node(), value)
    }

    /// The node this word lives on.
    pub fn home(&self) -> NodeId {
        self.inner.home
    }

    /// Plain read (one read).
    pub fn load(&self) -> u64 {
        ctx::charge_mem(MemOp::Read, self.inner.home);
        *self.inner.val.lock().unwrap()
    }

    /// Plain write (one write).
    pub fn store(&self, value: u64) {
        ctx::charge_mem(MemOp::Write, self.inner.home);
        *self.inner.val.lock().unwrap() = value;
    }

    /// The Butterfly's `atomior`: atomically OR `mask` in, returning the
    /// previous value. Test-and-set is `atomior(1) & 1`.
    pub fn atomior(&self, mask: u64) -> u64 {
        ctx::charge_mem(MemOp::Rmw, self.inner.home);
        let mut v = self.inner.val.lock().unwrap();
        let old = *v;
        *v |= mask;
        old
    }

    /// Test-and-set via `atomior`: returns `true` if the lock bit was
    /// already set (i.e. the acquire failed).
    pub fn test_and_set(&self) -> bool {
        self.atomior(1) & 1 == 1
    }

    /// Atomic add, returning the previous value.
    pub fn fetch_add(&self, n: u64) -> u64 {
        ctx::charge_mem(MemOp::Rmw, self.inner.home);
        let mut v = self.inner.val.lock().unwrap();
        let old = *v;
        *v = v.wrapping_add(n);
        old
    }

    /// Atomic subtract, returning the previous value.
    pub fn fetch_sub(&self, n: u64) -> u64 {
        ctx::charge_mem(MemOp::Rmw, self.inner.home);
        let mut v = self.inner.val.lock().unwrap();
        let old = *v;
        *v = v.wrapping_sub(n);
        old
    }

    /// Atomic swap, returning the previous value.
    pub fn swap(&self, value: u64) -> u64 {
        ctx::charge_mem(MemOp::Rmw, self.inner.home);
        let mut v = self.inner.val.lock().unwrap();
        let old = *v;
        *v = value;
        old
    }

    /// Atomic compare-exchange: if the word equals `current`, store `new`
    /// and return `Ok(current)`, else return `Err(actual)`.
    pub fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        ctx::charge_mem(MemOp::Rmw, self.inner.home);
        let mut v = self.inner.val.lock().unwrap();
        if *v == current {
            *v = new;
            Ok(current)
        } else {
            Err(*v)
        }
    }

    /// Inspect without charging simulated cost.
    pub fn peek(&self) -> u64 {
        *self.inner.val.lock().unwrap()
    }

    /// Set without charging simulated cost (out-of-band setup).
    pub fn poke(&self, value: u64) {
        *self.inner.val.lock().unwrap() = value;
    }
}
