//! One-permit handoff gate used for the engine <-> sim-thread coroutine
//! handshake.
//!
//! The engine and every simulated thread take turns: exactly one of them
//! runs at any real-time instant. A [`Gate`] carries the single "you may
//! run" permit between two parties.

use std::sync::{Condvar, Mutex};

/// A binary handoff gate. `open` deposits a permit; `pass` blocks until a
/// permit is present and consumes it.
#[derive(Debug, Default)]
pub(crate) struct Gate {
    permit: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    pub(crate) fn new() -> Gate {
        Gate::default()
    }

    /// Deposit the permit, waking the waiter if any. Opening an already
    /// open gate is a no-op (used only during shutdown fan-out).
    pub(crate) fn open(&self) {
        let mut p = self.permit.lock().unwrap_or_else(|e| e.into_inner());
        *p = true;
        drop(p);
        self.cv.notify_one();
    }

    /// Block until the permit is present, then consume it.
    pub(crate) fn pass(&self) {
        let mut p = self.permit.lock().unwrap_or_else(|e| e.into_inner());
        while !*p {
            p = self.cv.wait(p).unwrap_or_else(|e| e.into_inner());
        }
        *p = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn open_then_pass_does_not_block() {
        let g = Gate::new();
        g.open();
        g.pass(); // must not hang
    }

    #[test]
    fn pass_waits_for_open() {
        let g = Arc::new(Gate::new());
        let g2 = g.clone();
        let t = std::thread::spawn(move || g2.pass());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "pass returned before open");
        g.open();
        t.join().unwrap();
    }

    #[test]
    fn double_open_is_single_permit() {
        let g = Gate::new();
        g.open();
        g.open();
        g.pass();
        // Second pass would block; verify permit was consumed.
        assert!(!*g.permit.lock().unwrap());
    }

    #[test]
    fn ping_pong_handoff() {
        let a = Arc::new(Gate::new());
        let b = Arc::new(Gate::new());
        let (a2, b2) = (a.clone(), b.clone());
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                a2.pass();
                b2.open();
            }
        });
        for _ in 0..100 {
            a.open();
            b.pass();
        }
        t.join().unwrap();
    }
}
