//! Errors surfaced by a simulation run.

use crate::tcb::{TState, ThreadId};
use crate::time::VirtualTime;

/// Why a simulation run failed.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The event queue drained while threads were still blocked: every
    /// remaining thread is waiting for an unpark that can never arrive.
    Deadlock {
        /// Virtual time at which the simulation stalled.
        at: VirtualTime,
        /// The stuck threads (id, name, state).
        blocked: Vec<(ThreadId, String, TState)>,
    },
    /// A simulated thread panicked; the run was torn down.
    ThreadPanicked {
        /// Name of the panicking thread.
        thread: String,
        /// Panic payload rendered as a string.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                write!(f, "simulation deadlocked at {} with {} stuck thread(s):", at, blocked.len())?;
                for (tid, name, state) in blocked {
                    write!(f, " [{} {:?} {:?}]", tid, name, state)?;
                }
                Ok(())
            }
            SimError::ThreadPanicked { thread, message } => {
                write!(f, "simulated thread {:?} panicked: {}", thread, message)
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_deadlock() {
        let e = SimError::Deadlock {
            at: VirtualTime(42),
            blocked: vec![(ThreadId(1), "worker".into(), TState::Blocked)],
        };
        let s = format!("{}", e);
        assert!(s.contains("deadlocked at 42ns"));
        assert!(s.contains("worker"));
    }

    #[test]
    fn display_panic() {
        let e = SimError::ThreadPanicked {
            thread: "root".into(),
            message: "boom".into(),
        };
        assert_eq!(format!("{}", e), "simulated thread \"root\" panicked: boom");
    }
}
