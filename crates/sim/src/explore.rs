//! Seeded schedule exploration: run one workload under many perturbed
//! interleavings and report every schedule (by seed) that broke it.
//!
//! The butterfly engine is bit-for-bit deterministic, which makes the
//! seed suite reproducible — and blind to interleavings the canonical
//! schedule never produces. This module turns that determinism into a
//! race-hunting tool: [`explore`] reruns a workload under `schedules`
//! different [`ScheduleNoise`] seeds (forced preemptions at simulator
//! calls, ready-queue reordering, bounded timer delays), and any failure
//! — a panicked assertion, a violated oracle, a deadlock — is reported
//! together with the seed that produced it. [`replay`] reruns exactly
//! that interleaving from the printed seed, bit for bit, as many times
//! as it takes to understand the bug.
//!
//! ```
//! use butterfly_sim as sim;
//! use sim::{ctx, Duration, SimConfig};
//!
//! let report = sim::explore(SimConfig::butterfly(2), 8, || {
//!     ctx::advance(Duration::micros(10));
//! });
//! report.assert_clean();
//! assert_eq!(report.schedules, 8);
//! ```

use std::sync::Arc;

use crate::config::{ScheduleNoise, SimConfig};
use crate::error::SimError;
use crate::report::SimReport;

/// One schedule that broke the workload: the noise seed to replay it and
/// the error it produced.
#[derive(Debug, Clone)]
pub struct ScheduleFailure {
    /// Index of the schedule within the exploration (0-based).
    pub index: u64,
    /// Noise seed that produced the failing interleaving. Feed it to
    /// [`replay`] with the same `SimConfig` and workload to reproduce
    /// the failure bit for bit.
    pub seed: u64,
    /// What went wrong under that schedule.
    pub error: SimError,
}

impl std::fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule #{} (noise seed {:#018x}): {}",
            self.index, self.seed, self.error
        )
    }
}

/// Outcome of an [`explore`] sweep.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Number of schedules executed.
    pub schedules: u64,
    /// Base seed the per-schedule noise seeds were derived from.
    pub base_seed: u64,
    /// Every schedule that failed, in exploration order.
    pub failures: Vec<ScheduleFailure>,
}

impl ExploreReport {
    /// Whether every schedule passed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The first failing schedule, if any.
    pub fn first_failure(&self) -> Option<&ScheduleFailure> {
        self.failures.first()
    }

    /// Panic with every failure (and its replay seed) unless the sweep
    /// was clean. The go-to assertion for exploration-backed tests.
    ///
    /// # Panics
    ///
    /// Panics when any schedule failed, listing each failing seed.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "{} of {} schedules failed (base seed {:#018x}):\n{}",
            self.failures.len(),
            self.schedules,
            self.base_seed,
            self.failures
                .iter()
                .map(|f| format!("  {f}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

impl std::fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "explored {} schedules from base seed {:#018x}: all clean",
                self.schedules, self.base_seed
            )
        } else {
            write!(
                f,
                "explored {} schedules from base seed {:#018x}: {} failed",
                self.schedules,
                self.base_seed,
                self.failures.len()
            )?;
            for fail in &self.failures {
                write!(f, "\n  {fail}")?;
            }
            Ok(())
        }
    }
}

/// Noise seed of schedule `index` in a sweep derived from `base`
/// (splitmix64 finalizer, so neighbouring indices decorrelate).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The noise configuration schedule seed `seed` runs under, given the
/// sweep's `cfg` (rates come from `cfg.schedule_noise` when present,
/// [`ScheduleNoise::default`] otherwise). [`explore`] and [`replay`]
/// both resolve noise through here, which is what makes a replayed seed
/// reproduce the explored schedule exactly.
fn resolve_noise(cfg: &SimConfig, seed: u64) -> ScheduleNoise {
    let template = cfg.schedule_noise.clone().unwrap_or_default();
    ScheduleNoise { seed, ..template }
}

/// Run `body` under `schedules` different perturbed interleavings of
/// `cfg` and collect every failing schedule with its replay seed.
///
/// Per-schedule noise seeds are derived from `cfg.schedule_noise.seed`
/// when noise is pre-attached (so sweeps themselves are reproducible and
/// CI can pin a fixed seed budget), falling back to `cfg.seed`. Noise
/// *rates* likewise come from `cfg.schedule_noise` when present. The
/// workload-visible random stream (`cfg.seed`) is identical across all
/// schedules — only the interleaving varies.
///
/// Failures surface as [`SimError`]: assertion failures inside the
/// workload arrive as [`SimError::ThreadPanicked`], lost wakeups as
/// [`SimError::Deadlock`]. Reproduce one with [`replay`].
pub fn explore<F>(cfg: SimConfig, schedules: u64, body: F) -> ExploreReport
where
    F: Fn() + Send + Sync + 'static,
{
    let base_seed = cfg.schedule_noise.as_ref().map_or(cfg.seed, |n| n.seed);
    let body = Arc::new(body);
    let mut failures = Vec::new();
    for index in 0..schedules {
        let seed = derive_seed(base_seed, index);
        let mut c = cfg.clone();
        c.schedule_noise = Some(resolve_noise(&cfg, seed));
        let b = Arc::clone(&body);
        if let Err(error) = crate::run(c, move || b()) {
            failures.push(ScheduleFailure { index, seed, error });
        }
    }
    ExploreReport {
        schedules,
        base_seed,
        failures,
    }
}

/// Re-run `body` under the exact interleaving a noise `seed` names —
/// the one printed by [`ExploreReport`] / [`ScheduleFailure`]. Pass the
/// same `cfg` and workload as the original [`explore`] call and the run
/// is bit-for-bit identical, every time.
///
/// # Errors
///
/// Exactly those of [`crate::run`]: the replayed schedule's deadlock or
/// thread panic, if that is what the seed reproduces.
pub fn replay<R, F>(cfg: SimConfig, seed: u64, body: F) -> Result<(R, SimReport), SimError>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let mut c = cfg;
    c.schedule_noise = Some(resolve_noise(&c.clone(), seed));
    crate::run(c, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcId;
    use crate::ctx;
    use crate::time::Duration;

    fn cfg() -> SimConfig {
        SimConfig {
            processors: 2,
            ..SimConfig::default()
        }
    }

    fn contended_body() {
        let h = ctx::spawn(ProcId(1), "peer", || {
            for _ in 0..20 {
                ctx::advance(Duration::micros(7));
            }
        });
        for _ in 0..20 {
            ctx::advance(Duration::micros(5));
        }
        let _ = h;
        ctx::sleep(Duration::micros(500));
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        let a: Vec<u64> = (0..16).map(|i| derive_seed(1, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| derive_seed(1, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "seeds must not collide: {a:?}");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0), "base must matter");
    }

    #[test]
    fn replay_is_bit_for_bit_deterministic() {
        let run = || replay::<(), _>(cfg(), 0xfeed, contended_body).unwrap().1;
        let (r1, r2) = (run(), run());
        assert_eq!(r1.events, r2.events);
        assert_eq!(r1.end_time, r2.end_time);
        assert_eq!(r1.handshakes, r2.handshakes);
        assert_eq!(r1.fast_advances, r2.fast_advances);
        assert_eq!(r1.proc_switches, r2.proc_switches);
    }

    #[test]
    fn noise_seeds_change_the_schedule() {
        // At the default rates two different seeds virtually always
        // perturb a 40-advance workload differently; assert at least one
        // of several seed pairs diverges so the test is robust.
        let run = |seed| replay::<(), _>(cfg(), seed, contended_body).unwrap().1;
        let baseline = run(1);
        let diverged = (2..8).any(|s| {
            let r = run(s);
            r.events != baseline.events || r.proc_switches != baseline.proc_switches
        });
        assert!(diverged, "noise seeds never changed the schedule");
    }

    #[test]
    fn explore_runs_every_schedule_and_reports_clean() {
        let report = explore(cfg(), 5, contended_body);
        assert_eq!(report.schedules, 5);
        report.assert_clean();
        assert!(report.first_failure().is_none());
        assert!(format!("{report}").contains("all clean"));
    }

    #[test]
    fn explore_surfaces_failing_seeds_and_replay_reproduces_them() {
        // A workload that fails under *some* interleavings: it asserts
        // the peer has not finished by the time the main thread has done
        // little work — forced preemptions break that assumption.
        fn racy() {
            let done = crate::mem::SimWord::new_local(0);
            let d = done.clone();
            ctx::spawn(ProcId(1), "peer", move || {
                ctx::advance(Duration::micros(1));
                d.store(1);
            });
            for _ in 0..50 {
                ctx::advance(Duration::micros(1));
            }
            // Under the canonical schedule the peer's store lands before
            // these 50 advances finish. A noisy schedule can delay it.
            assert_eq!(done.load(), 1, "peer had not stored yet");
        }
        let noisy = SimConfig {
            schedule_noise: Some(ScheduleNoise::from_seed(7)),
            ..cfg()
        };
        let report = explore(noisy.clone(), 24, racy);
        assert_eq!(report.base_seed, 7, "base seed must come from the attached noise");
        if let Some(f) = report.first_failure() {
            // Whatever exploration found, the printed seed replays it.
            let e1 = replay::<(), _>(noisy.clone(), f.seed, racy).unwrap_err();
            let e2 = replay::<(), _>(noisy, f.seed, racy).unwrap_err();
            assert_eq!(e1.to_string(), e2.to_string());
            assert_eq!(e1.to_string(), f.error.to_string());
            assert!(format!("{f}").contains("noise seed"));
        }
    }

    #[test]
    fn schedule_recording_captures_decisions() {
        let recorded = SimConfig {
            record_schedule: true,
            schedule_noise: Some(ScheduleNoise::from_seed(3)),
            ..cfg()
        };
        let (_, report) = crate::run(recorded, contended_body).unwrap();
        assert!(!report.schedule.is_empty(), "recording must capture dispatches");
        assert!(report
            .schedule
            .windows(2)
            .all(|w| w[0].at <= w[1].at), "records must be time-ordered");
        let (_, silent) = crate::run(cfg(), contended_body).unwrap();
        assert!(silent.schedule.is_empty(), "recording is opt-in");
    }
}
