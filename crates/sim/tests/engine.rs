//! End-to-end tests of the discrete-event engine: scheduling semantics,
//! NUMA cost accounting, determinism, and failure reporting.

use butterfly_sim as sim;
use sim::{ctx, Duration, MemoryParams, ProcId, SimCell, SimConfig, SimError, SimWord, TState, WakeReason};

fn cfg(processors: usize) -> SimConfig {
    SimConfig {
        processors,
        ..SimConfig::default()
    }
}

#[test]
fn root_runs_and_returns_value() {
    let (v, report) = sim::run(cfg(1), || {
        ctx::advance(Duration::micros(5));
        42u32
    })
    .unwrap();
    assert_eq!(v, 42);
    assert_eq!(report.threads, 1);
    assert!(report.end_time.as_nanos() >= 5_000);
}

#[test]
fn advance_accumulates_virtual_time() {
    let (t, _) = sim::run(cfg(1), || {
        let t0 = ctx::now();
        ctx::advance(Duration::micros(3));
        ctx::advance(Duration::nanos(500));
        ctx::now().since(t0)
    })
    .unwrap();
    assert_eq!(t, Duration::nanos(3_500));
}

#[test]
fn threads_on_distinct_processors_overlap_in_virtual_time() {
    // Two threads each doing 1ms of work on their own processor should
    // finish in ~1ms of virtual time, not 2ms.
    let (_, report) = sim::run(cfg(2), || {
        let done = SimWord::new_local(0);
        let d = done.clone();
        ctx::spawn(ProcId(1), "peer", move || {
            ctx::advance(Duration::millis(1));
            d.fetch_add(1);
        });
        ctx::advance(Duration::millis(1));
        while done.peek() == 0 {
            ctx::advance(Duration::micros(10));
        }
    })
    .unwrap();
    assert!(
        report.end_time.as_nanos() < 1_600_000,
        "parallel work serialized: end={}ns",
        report.end_time.as_nanos()
    );
}

#[test]
fn same_processor_threads_serialize() {
    let (_, report) = sim::run(cfg(1), || {
        let done = SimWord::new_local(0);
        let d = done.clone();
        ctx::spawn(ProcId(0), "peer", move || {
            ctx::advance(Duration::millis(1));
            d.fetch_add(1);
        });
        ctx::advance(Duration::millis(1));
        while done.peek() == 0 {
            // Yield so the same-processor peer can run.
            ctx::yield_now();
        }
    })
    .unwrap();
    assert!(
        report.end_time.as_nanos() >= 2_000_000,
        "same-processor threads must serialize: end={}ns",
        report.end_time.as_nanos()
    );
}

#[test]
fn park_unpark_roundtrip() {
    let (reason, _) = sim::run(cfg(2), || {
        let me = ctx::current();
        ctx::spawn(ProcId(1), "waker", move || {
            ctx::advance(Duration::micros(50));
            ctx::unpark(me);
        });
        ctx::park()
    })
    .unwrap();
    assert_eq!(reason, WakeReason::Unparked);
}

#[test]
fn unpark_before_park_leaves_permit() {
    let (reason, _) = sim::run(cfg(1), || {
        let me = ctx::current();
        // Self-unpark while running: permit is stored.
        ctx::unpark(me);
        ctx::park()
    })
    .unwrap();
    assert_eq!(reason, WakeReason::Unparked);
}

#[test]
fn park_timeout_fires_without_unpark() {
    let (out, _) = sim::run(cfg(1), || {
        let t0 = ctx::now();
        let reason = ctx::park_timeout(Duration::micros(100));
        (reason, ctx::now().since(t0))
    })
    .unwrap();
    assert_eq!(out.0, WakeReason::Timeout);
    assert!(out.1.as_nanos() >= 100_000);
}

#[test]
fn park_timeout_unparked_early() {
    let (out, _) = sim::run(cfg(2), || {
        let me = ctx::current();
        ctx::spawn(ProcId(1), "waker", move || {
            ctx::advance(Duration::micros(10));
            ctx::unpark(me);
        });
        let reason = ctx::park_timeout(Duration::millis(50));
        (reason, ctx::now())
    })
    .unwrap();
    assert_eq!(out.0, WakeReason::Unparked);
    assert!(out.1.as_nanos() < 50_000_000, "woke at {} — timer won", out.1);
}

#[test]
fn stale_timeout_does_not_wake_next_park() {
    // Park with a short timeout, get unparked early, then park again and
    // make sure the stale timer does not cause a spurious wake.
    let (reason2, _) = sim::run(cfg(2), || {
        let me = ctx::current();
        ctx::spawn(ProcId(1), "waker", move || {
            ctx::advance(Duration::micros(10));
            ctx::unpark(me); // early unpark for park #1
            ctx::advance(Duration::millis(10));
            ctx::unpark(me); // legitimate wake for park #2
        });
        let r1 = ctx::park_timeout(Duration::micros(100));
        assert_eq!(r1, WakeReason::Unparked);
        // Stale timer for park #1 fires at t=100us, during this park:
        ctx::park()
    })
    .unwrap();
    assert_eq!(reason2, WakeReason::Unparked);
}

#[test]
fn sleep_releases_processor_to_other_thread() {
    let (order, _) = sim::run(cfg(1), || {
        let log = SimCell::new_local(Vec::<&'static str>::new());
        let l2 = log.clone();
        ctx::spawn(ProcId(0), "bg", move || {
            l2.poke(|v| v.push("bg-ran"));
        });
        ctx::sleep(Duration::millis(1)); // frees proc 0 for "bg"
        log.poke(|v| v.push("root-woke"));
        log.peek()
    })
    .unwrap();
    assert_eq!(order, vec!["bg-ran", "root-woke"]);
}

#[test]
fn deadlock_is_detected_and_reported() {
    let err = sim::run(cfg(1), || {
        ctx::park(); // nobody will ever unpark us
    })
    .unwrap_err();
    match err {
        SimError::Deadlock { blocked, .. } => {
            assert_eq!(blocked.len(), 1);
            assert_eq!(blocked[0].1, "root");
            assert_eq!(blocked[0].2, TState::Blocked);
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn thread_panic_becomes_error() {
    let err = sim::run(cfg(2), || {
        ctx::spawn(ProcId(1), "bomber", || panic!("boom-{}", 7));
        // Block forever; teardown must still reclaim us.
        ctx::park();
    })
    .unwrap_err();
    match err {
        SimError::ThreadPanicked { thread, message } => {
            assert_eq!(thread, "bomber");
            assert!(message.contains("boom-7"));
        }
        other => panic!("expected panic error, got {other}"),
    }
}

#[test]
fn numa_costs_differ_local_vs_remote() {
    let ((local, remote), _) = sim::run(cfg(2), || {
        let local_cell = SimWord::new_on(sim::NodeId(0), 0);
        let remote_cell = SimWord::new_on(sim::NodeId(1), 0);
        let t0 = ctx::now();
        local_cell.load();
        let local = ctx::now().since(t0);
        let t1 = ctx::now();
        remote_cell.load();
        let remote = ctx::now().since(t1);
        (local, remote)
    })
    .unwrap();
    assert!(remote > local, "remote read ({remote}) must cost more than local ({local})");
    let m = MemoryParams::default();
    assert_eq!(local, m.local_read);
    assert_eq!(remote, m.remote_read);
}

#[test]
fn cost_meter_counts_reads_writes_rmws() {
    let (delta, report) = sim::run(cfg(2), || {
        let w = SimWord::new_on(sim::NodeId(1), 0);
        let before = ctx::cost_meter();
        w.load(); // remote read
        w.store(3); // remote write
        w.atomior(1); // remote rmw = 1R + 1W + rmw
        ctx::cost_meter() - before
    })
    .unwrap();
    assert_eq!(delta.reads_remote, 2);
    assert_eq!(delta.writes_remote, 2);
    assert_eq!(delta.rmws, 1);
    assert_eq!(delta.reads_local, 0);
    assert_eq!(report.mem.rmws, 1);
}

#[test]
fn atomior_sets_bits_and_returns_old() {
    let (vals, _) = sim::run(cfg(1), || {
        let w = SimWord::new_local(0b0100);
        let old = w.atomior(0b0011);
        (old, w.load())
    })
    .unwrap();
    assert_eq!(vals.0, 0b0100);
    assert_eq!(vals.1, 0b0111);
}

#[test]
fn compare_exchange_success_and_failure() {
    let (out, _) = sim::run(cfg(1), || {
        let w = SimWord::new_local(5);
        let ok = w.compare_exchange(5, 9);
        let err = w.compare_exchange(5, 11);
        (ok, err, w.load())
    })
    .unwrap();
    assert_eq!(out.0, Ok(5));
    assert_eq!(out.1, Err(9));
    assert_eq!(out.2, 9);
}

#[test]
fn quantum_preemption_interleaves_same_processor_threads() {
    // Two CPU-bound threads on one processor with a small quantum: both
    // must make progress in interleaved slices (neither finishes first
    // while the other has not started).
    let config = SimConfig {
        processors: 1,
        quantum: Some(Duration::micros(100)),
        ..SimConfig::default()
    };
    let (log, _) = sim::run(config, || {
        let log = SimCell::new_local(Vec::<(u8, u32)>::new());
        let l2 = log.clone();
        ctx::spawn(ProcId(0), "b", move || {
            for i in 0..5 {
                ctx::advance(Duration::micros(60));
                l2.poke(|v| v.push((1, i)));
            }
        });
        for i in 0..5 {
            ctx::advance(Duration::micros(60));
            log.poke(|v| v.push((0, i)));
        }
        // Let "b" finish.
        while log.peek().len() < 10 {
            ctx::yield_now();
        }
        log.peek()
    })
    .unwrap();
    // Interleaving: thread 1's first entry must come before thread 0's last.
    let first_b = log.iter().position(|&(t, _)| t == 1).expect("b never ran");
    let last_a = log.iter().rposition(|&(t, _)| t == 0).unwrap();
    assert!(
        first_b < last_a,
        "no interleaving despite quantum: {:?}",
        log
    );
}

#[test]
fn no_preemption_when_quantum_disabled() {
    let config = SimConfig {
        processors: 1,
        quantum: None,
        ..SimConfig::default()
    };
    let (log, _) = sim::run(config, || {
        let log = SimCell::new_local(Vec::<u8>::new());
        let l2 = log.clone();
        ctx::spawn(ProcId(0), "b", move || {
            l2.poke(|v| v.push(1));
        });
        for _ in 0..50 {
            ctx::advance(Duration::millis(10));
            log.poke(|v| v.push(0));
        }
        ctx::yield_now();
        // After our voluntary yield b runs.
        while log.peek().len() < 51 {
            ctx::yield_now();
        }
        log.peek()
    })
    .unwrap();
    assert!(
        log[..50].iter().all(|&t| t == 0),
        "thread b ran before the voluntary yield despite quantum=None"
    );
}

#[test]
fn runs_are_deterministic() {
    fn one_run() -> (u64, u64) {
        let (v, report) = sim::run(cfg(4), || {
            let total = SimWord::new_local(0);
            let done = SimWord::new_local(0);
            for p in 0..4 {
                let t = total.clone();
                let d = done.clone();
                ctx::spawn(ProcId(p), format!("w{p}"), move || {
                    for _ in 0..10 {
                        let jitter = ctx::rand_u64() % 1000;
                        ctx::advance(Duration::nanos(500 + jitter));
                        t.fetch_add(1);
                    }
                    d.fetch_add(1);
                });
            }
            while done.load() < 4 {
                ctx::advance(Duration::micros(5));
            }
            total.load()
        })
        .unwrap();
        (v, report.end_time.as_nanos())
    }
    let a = one_run();
    let b = one_run();
    assert_eq!(a.0, 40);
    assert_eq!(a, b, "same seed and program must give identical end times");
}

#[test]
fn rand_streams_differ_across_seeds() {
    let draw = |seed| {
        sim::run(
            SimConfig {
                seed,
                ..cfg(1)
            },
            ctx::rand_u64,
        )
        .unwrap()
        .0
    };
    assert_ne!(draw(1), draw(2));
}

#[test]
fn spawn_charges_creation_cost_to_parent() {
    let (elapsed, _) = sim::run(cfg(2), || {
        let t0 = ctx::now();
        ctx::spawn(ProcId(1), "child", || {});
        ctx::now().since(t0)
    })
    .unwrap();
    assert_eq!(elapsed, SimConfig::default().thread_create);
}

#[test]
fn report_counts_processor_busy_time() {
    let (_, report) = sim::run(cfg(2), || {
        ctx::advance(Duration::millis(2));
    })
    .unwrap();
    assert!(report.proc_busy[0].as_nanos() >= 2_000_000);
    assert_eq!(report.proc_busy[1], Duration::ZERO);
    assert!(report.utilization() > 0.0);
}

#[test]
fn many_threads_many_processors_smoke() {
    let (sum, report) = sim::run(cfg(8), || {
        let total = SimWord::new_local(0);
        let done = SimWord::new_local(0);
        for i in 0..32 {
            let t = total.clone();
            let d = done.clone();
            ctx::spawn(ProcId(i % 8), format!("w{i}"), move || {
                ctx::advance(Duration::micros(10 * (i as u64 + 1)));
                t.fetch_add(i as u64);
                d.fetch_add(1);
            });
        }
        while done.load() < 32 {
            ctx::advance(Duration::micros(50));
        }
        total.load()
    })
    .unwrap();
    assert_eq!(sum, (0..32u64).sum());
    assert_eq!(report.threads, 33);
}

#[test]
fn out_of_sim_calls_panic_cleanly() {
    let r = std::panic::catch_unwind(ctx::now);
    assert!(r.is_err());
}

#[test]
fn simcell_update_charges_read_and_write() {
    let (delta, _) = sim::run(cfg(1), || {
        let c = SimCell::new_local(vec![1u32]);
        let before = ctx::cost_meter();
        c.update(|v| v.push(2));
        ctx::cost_meter() - before
    })
    .unwrap();
    assert_eq!(delta.reads_local, 1);
    assert_eq!(delta.writes_local, 1);
}
