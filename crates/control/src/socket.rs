//! Line-oriented local-socket transport for the control plane.
//!
//! A Unix-domain stream socket an operator can drive with `nc -U` (or
//! any line client). Protocol, chosen for copy-paste ergonomics over a
//! terminal:
//!
//! * client sends one command per line;
//! * server replies with `ok` or `err <diagnostic>`, then the response
//!   body (possibly multi-line), then a single `.` terminator line —
//!   SMTP-style, so multi-line bodies like `snapshot` need no length
//!   prefix (body lines consisting of a bare `.` are dot-stuffed);
//! * `quit` closes the connection.
//!
//! Each connection is served by its own thread; the listener thread
//! accepts until the [`SocketServer`] handle is dropped (which unblocks
//! the accept loop by connecting to itself).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::plane::ControlPlane;

/// A running control-plane socket server.
pub struct SocketServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SocketServer {
    /// Bind `path` (removing any stale socket file first) and serve
    /// `plane` on a background accept loop.
    pub fn bind(path: impl AsRef<Path>, plane: ControlPlane) -> std::io::Result<SocketServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                let plane = plane.clone();
                std::thread::spawn(move || serve_connection(conn, &plane));
            }
        });
        Ok(SocketServer {
            path,
            stop,
            thread: Some(thread),
        })
    }

    /// The socket path being served.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept() with a throwaway connection, then join.
        let _ = UnixStream::connect(&self.path);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

fn serve_connection(conn: UnixStream, plane: &ControlPlane) {
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = conn;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line == "quit" {
            break;
        }
        let response = plane.execute(line);
        if write_response(&mut writer, &response).is_err() {
            break;
        }
    }
}

fn write_response(
    w: &mut impl Write,
    response: &Result<String, String>,
) -> std::io::Result<()> {
    match response {
        Ok(body) => {
            writeln!(w, "ok")?;
            for line in body.lines() {
                // Dot-stuff so a body line of `.` cannot end the frame.
                if line.starts_with('.') {
                    writeln!(w, ".{line}")?;
                } else {
                    writeln!(w, "{line}")?;
                }
            }
        }
        Err(e) => writeln!(w, "err {e}")?,
    }
    writeln!(w, ".")?;
    w.flush()
}

/// A minimal blocking client for the socket protocol (used by tests,
/// the soak harness's command driver, and scripts).
pub struct SocketClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl SocketClient {
    /// Connect to a [`SocketServer`].
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<SocketClient> {
        let stream = UnixStream::connect(path)?;
        let read_half = stream.try_clone()?;
        Ok(SocketClient {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Send one command and read the framed response.
    pub fn send(&mut self, line: &str) -> std::io::Result<Result<String, String>> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut status = String::new();
        if self.reader.read_line(&mut status)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status = status.trim_end().to_string();
        let mut body = Vec::new();
        loop {
            let mut l = String::new();
            if self.reader.read_line(&mut l)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated response frame",
                ));
            }
            let l = l.trim_end_matches('\n');
            if l == "." {
                break;
            }
            // Undo dot-stuffing: any body line starting with `.` was
            // sent with one extra leading dot (the bare-`.` terminator
            // was already handled above).
            body.push(l.strip_prefix('.').unwrap_or(l).to_string());
        }
        if status == "ok" {
            Ok(Ok(body.join("\n")))
        } else if let Some(e) = status.strip_prefix("err ") {
            Ok(Err(e.to_string()))
        } else {
            Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {status:?}"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::BreakerHub;
    use adaptive_native::AdaptiveMutex;
    use std::sync::Arc;

    fn temp_socket(tag: &str) -> PathBuf {
        let pid = std::process::id();
        std::env::temp_dir().join(format!("adaptive-control-{tag}-{pid}.sock"))
    }

    #[test]
    fn socket_round_trips_commands_and_multiline_bodies() {
        let hub = Arc::new(BreakerHub::default());
        let m = Arc::new(AdaptiveMutex::new(0u32));
        hub.register("net.lock", m.clone());
        hub.register("disk.lock", Arc::new(AdaptiveMutex::new(0u32)));
        let server =
            SocketServer::bind(temp_socket("rt"), ControlPlane::new(hub)).expect("bind");

        let mut client = SocketClient::connect(server.path()).expect("connect");
        assert_eq!(
            client.send("targets").unwrap().unwrap(),
            "disk.lock\nnet.lock"
        );
        let snap = client.send("snapshot").unwrap().unwrap();
        assert!(snap.lines().count() > 10, "multi-line body survives framing");
        assert!(snap.contains("breaker_state{lock=\"net.lock\"} 0"));
        client.send("quarantine net.lock").unwrap().unwrap();
        assert!(m.is_quarantined(), "command reached the live lock");
        let err = client.send("retune net.lock spin soon").unwrap();
        assert!(err.is_err());
        // A second concurrent client works (per-connection threads).
        let mut c2 = SocketClient::connect(server.path()).expect("connect 2");
        assert!(c2.send("health net.lock").unwrap().unwrap().contains("quarantined"));
        drop(server);
    }

    #[test]
    fn server_drop_removes_the_socket_file() {
        let path = temp_socket("rm");
        let server =
            SocketServer::bind(&path, ControlPlane::new(Arc::new(BreakerHub::default())))
                .expect("bind");
        assert!(path.exists());
        drop(server);
        assert!(!path.exists());
    }
}
