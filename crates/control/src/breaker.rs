//! The circuit-breaker lock lifecycle.
//!
//! PR 3's watchdog intervenes on a stall with a one-shot `quarantine()`
//! and forgets; this module replaces that with an explicit per-lock
//! state machine in the style of a service-mesh circuit breaker:
//!
//! ```text
//!            stall / repeated poison / policy panics
//!   Closed ───────────► Suspect ───────────► Quarantined ◄─┐
//!     ▲                    │                     │         │ fault during
//!     │   finding cleared  │      backoff served │         │ trial (backoff
//!     │◄───────────────────┘                     ▼         │ doubles)
//!     │                                      HalfOpen ─────┘
//!     │            trial window clean            │
//!     └────────────── Healed ◄───────────────────┘
//! ```
//!
//! The machine itself is *pure*: [`Breaker::step`] consumes one
//! [`Finding`] per poll interval and returns the [`Transition`]s taken
//! plus the [`BreakerAction`]s the supervisor should apply to the lock
//! (quarantine, nudge, heal). Keeping side effects out of the machine
//! makes every reachable transition sequence checkable by the property
//! test in `tests/proptest_breaker.rs`.
//!
//! Design points (DESIGN.md §15):
//!
//! * **No skips.** A stall escalates `Closed → Suspect → Quarantined`
//!   in a single poll — two legal edges, never a `Closed → Quarantined`
//!   jump — so an observer replaying the event log always sees the
//!   suspicion that preceded the sentence.
//! * **Hysteresis on re-open.** Every entry into `Quarantined` serves a
//!   dwell of `open_base_polls << level` and raises the level; `Healed`
//!   pays one level back. A lock that flaps open/closed therefore sits
//!   out exponentially longer sentences, while one clean heal does not
//!   reset the breaker's memory of the incident.
//! * **Half-open probing is a nudge + bounded trial window.** The
//!   breaker cannot synchronously "test" a lock without becoming a
//!   contender itself, so the probe is [`BreakerAction::Heal`] (re-arm
//!   adaptation) plus [`BreakerAction::Nudge`] (a try-lock
//!   acquire/release that re-runs the contended release path, granting
//!   any waiter whose wakeup was lost), followed by `trial_polls` of
//!   observation. `HalfOpen` always resolves within that window: a
//!   fault re-opens immediately, a clean window heals.

use serde::Serialize;

/// The lifecycle state of one lock's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum BreakerState {
    /// Healthy: findings are clear, adaptation runs normally.
    Closed,
    /// A finding was observed; watching for escalation or recovery.
    Suspect,
    /// The breaker is open: the lock is quarantined (pure blocking,
    /// adaptation disabled) while the backoff dwell is served.
    Quarantined,
    /// Probing: adaptation re-armed, trial window in progress.
    HalfOpen,
    /// The trial window passed clean; transient afterglow state that
    /// re-arms to [`BreakerState::Closed`] on the next poll.
    Healed,
}

impl BreakerState {
    /// Every state, in lifecycle order.
    pub const ALL: [BreakerState; 5] = [
        BreakerState::Closed,
        BreakerState::Suspect,
        BreakerState::Quarantined,
        BreakerState::HalfOpen,
        BreakerState::Healed,
    ];

    /// Label used in events, snapshots, and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Suspect => "suspect",
            BreakerState::Quarantined => "quarantined",
            BreakerState::HalfOpen => "half-open",
            BreakerState::Healed => "healed",
        }
    }

    /// Small integer code for counter series (a Chrome-trace counter
    /// track of the lifecycle over time).
    pub fn code(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Suspect => 1,
            BreakerState::Quarantined => 2,
            BreakerState::HalfOpen => 3,
            BreakerState::Healed => 4,
        }
    }

    /// Whether `from → to` is an edge of the lifecycle graph. This is
    /// the single source of truth the property test and the soak
    /// harness validate every emitted transition against.
    pub fn legal(from: BreakerState, to: BreakerState) -> bool {
        use BreakerState::*;
        matches!(
            (from, to),
            (Closed, Suspect)
                | (Suspect, Closed)
                | (Suspect, Quarantined)
                | (Quarantined, HalfOpen)
                | (HalfOpen, Quarantined)
                | (HalfOpen, Healed)
                | (Healed, Closed)
        )
    }
}

/// What one poll interval observed about a lock, already reduced to the
/// breaker's vocabulary (the supervisor derives this from consecutive
/// [`LockHealth`](adaptive_native::LockHealth) snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Finding {
    /// Nothing wrong this interval.
    Clear,
    /// Waiters exist but neither acquisitions nor handoffs advanced.
    Stall,
    /// The lock became poisoned (a holder panicked) this interval.
    Poison,
    /// The adaptation policy panicked (the mutex self-quarantined) this
    /// interval.
    PolicyPanic,
}

impl Finding {
    /// Label used as the transition reason.
    pub fn label(self) -> &'static str {
        match self {
            Finding::Clear => "clear",
            Finding::Stall => "stall",
            Finding::Poison => "poison",
            Finding::PolicyPanic => "policy-panic",
        }
    }

    /// Whether this finding indicates a fault.
    pub fn is_fault(self) -> bool {
        !matches!(self, Finding::Clear)
    }
}

/// What the supervisor should do to the lock after a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerAction {
    /// Snap the lock to the safe endpoint (pure blocking, adaptation
    /// off) — [`AdaptiveMutex::quarantine`](adaptive_native::AdaptiveMutex::quarantine).
    Quarantine,
    /// Acquire/release via try-lock to re-run the contended release
    /// path, rescuing waiters with lost wakeups.
    Nudge,
    /// Re-arm adaptation immediately (end the mutex-side quarantine, on
    /// probation).
    Heal,
}

/// One edge taken by the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before the edge.
    pub from: BreakerState,
    /// State after the edge.
    pub to: BreakerState,
    /// Why (a [`Finding::label`], `"operator"`, `"backoff-elapsed"`,
    /// `"trial-clean"`, or `"rearmed"`).
    pub reason: &'static str,
}

/// Everything one [`Breaker::step`] decided.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BreakerStep {
    /// Edges taken, in order (possibly several in one poll — a stall in
    /// `Closed` takes `Closed → Suspect` and `Suspect → Quarantined`).
    pub transitions: Vec<Transition>,
    /// Lock interventions to apply, in order.
    pub actions: Vec<BreakerAction>,
}

impl BreakerStep {
    /// Whether this step changed nothing (quiet poll / no-op override).
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty() && self.actions.is_empty()
    }
}

/// Tunables of the lifecycle machine.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Base dwell in `Quarantined`, in polls, at backoff level 0.
    pub open_base_polls: u32,
    /// Cap on the backoff shift: the dwell never exceeds
    /// `open_base_polls << max_backoff_shift`.
    pub max_backoff_shift: u32,
    /// Length of the `HalfOpen` trial window, in clean polls.
    pub trial_polls: u32,
    /// Non-stall findings (poison, policy panics) observed in `Suspect`
    /// before escalating to `Quarantined`. A stall escalates
    /// immediately.
    pub suspect_patience: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            open_base_polls: 2,
            max_backoff_shift: 6,
            trial_polls: 2,
            suspect_patience: 2,
        }
    }
}

/// The per-lock circuit breaker.
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Re-open count driving the exponential dwell (capped).
    level: u32,
    /// Polls left to serve in `Quarantined`.
    open_left: u32,
    /// Clean polls left in the `HalfOpen` trial window.
    trial_left: u32,
    /// Consecutive non-stall fault polls while `Suspect`.
    suspect_streak: u32,
    /// Polls spent in each state, indexed by [`BreakerState::code`].
    dwell: [u64; 5],
    polls: u64,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker::new(BreakerConfig::default())
    }
}

impl Breaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Breaker {
        Breaker {
            config,
            state: BreakerState::Closed,
            level: 0,
            open_left: 0,
            trial_left: 0,
            suspect_streak: 0,
            dwell: [0; 5],
            polls: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Current backoff level (entries into `Quarantined` not yet paid
    /// back by heals).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Polls observed while in `state` (the state each poll *started*
    /// in).
    pub fn dwell_polls(&self, state: BreakerState) -> u64 {
        self.dwell[state.code() as usize]
    }

    /// Total polls stepped.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// The dwell a quarantine entered now would serve, in polls.
    pub fn open_dwell_polls(&self) -> u32 {
        self.config.open_base_polls << self.level.min(self.config.max_backoff_shift)
    }

    fn go(&mut self, out: &mut BreakerStep, to: BreakerState, reason: &'static str) {
        debug_assert!(
            BreakerState::legal(self.state, to),
            "illegal breaker transition {} -> {}",
            self.state.label(),
            to.label()
        );
        out.transitions.push(Transition {
            from: self.state,
            to,
            reason,
        });
        self.state = to;
    }

    /// Enter `Quarantined`: serve the dwell for the current level, then
    /// raise the level (capped so the shift stays meaningful).
    fn open(&mut self, out: &mut BreakerStep, reason: &'static str) {
        self.open_left = self.open_dwell_polls();
        self.level = (self.level + 1).min(self.config.max_backoff_shift + 1);
        self.go(out, BreakerState::Quarantined, reason);
        out.actions.push(BreakerAction::Quarantine);
        out.actions.push(BreakerAction::Nudge);
    }

    /// Consume one poll interval's finding. Returns the edges taken and
    /// the interventions to apply (empty on a quiet poll).
    pub fn step(&mut self, finding: Finding) -> BreakerStep {
        let mut out = BreakerStep::default();
        self.polls += 1;
        self.dwell[self.state.code() as usize] += 1;

        // `Healed` is transient afterglow: re-arm first, then let the
        // (now `Closed`) machine judge this poll's finding normally.
        if self.state == BreakerState::Healed {
            self.go(&mut out, BreakerState::Closed, "rearmed");
        }

        match self.state {
            BreakerState::Closed => match finding {
                Finding::Clear => {}
                Finding::Stall => {
                    // A stall is the oracle-grade failure (waiters exist,
                    // nobody progresses): suspicion and sentence in the
                    // same poll, as two legal edges.
                    self.go(&mut out, BreakerState::Suspect, "stall");
                    self.open(&mut out, "stall");
                }
                f => {
                    self.suspect_streak = 1;
                    self.go(&mut out, BreakerState::Suspect, f.label());
                }
            },
            BreakerState::Suspect => match finding {
                Finding::Clear => {
                    self.suspect_streak = 0;
                    self.go(&mut out, BreakerState::Closed, "recovered");
                }
                Finding::Stall => self.open(&mut out, "stall"),
                f => {
                    self.suspect_streak += 1;
                    if self.suspect_streak >= self.config.suspect_patience {
                        self.suspect_streak = 0;
                        self.open(&mut out, f.label());
                    }
                }
            },
            BreakerState::Quarantined => {
                if finding.is_fault() {
                    // The fault is still live: restart the dwell at the
                    // current level. A stall additionally gets a nudge —
                    // the rescue for lost wakeups — but *not* another
                    // quarantine (that gate is the point of the breaker;
                    // see the watchdog regression test).
                    self.open_left = self.open_dwell_polls().max(1);
                    if finding == Finding::Stall {
                        out.actions.push(BreakerAction::Nudge);
                    }
                } else {
                    self.open_left = self.open_left.saturating_sub(1);
                    if self.open_left == 0 {
                        self.trial_left = self.config.trial_polls.max(1);
                        self.go(&mut out, BreakerState::HalfOpen, "backoff-elapsed");
                        out.actions.push(BreakerAction::Heal);
                        out.actions.push(BreakerAction::Nudge);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if finding.is_fault() {
                    self.open(&mut out, finding.label());
                } else {
                    self.trial_left = self.trial_left.saturating_sub(1);
                    if self.trial_left == 0 {
                        self.level = self.level.saturating_sub(1);
                        self.go(&mut out, BreakerState::Healed, "trial-clean");
                    }
                }
            }
            BreakerState::Healed => unreachable!("re-armed above"),
        }
        out
    }

    /// Operator override: force the breaker open (the `quarantine`
    /// command). Walks the legal path from the current state; a no-op
    /// if already open.
    pub fn force_open(&mut self) -> BreakerStep {
        let mut out = BreakerStep::default();
        if self.state == BreakerState::Healed {
            self.go(&mut out, BreakerState::Closed, "operator");
        }
        match self.state {
            BreakerState::Closed => {
                self.go(&mut out, BreakerState::Suspect, "operator");
                self.open(&mut out, "operator");
            }
            BreakerState::Suspect | BreakerState::HalfOpen => self.open(&mut out, "operator"),
            BreakerState::Quarantined => {}
            BreakerState::Healed => unreachable!("re-armed above"),
        }
        out
    }

    /// Operator override: end the dwell now and start the half-open
    /// trial (the `heal` command). A no-op unless currently open.
    pub fn force_probe(&mut self) -> BreakerStep {
        let mut out = BreakerStep::default();
        if self.state == BreakerState::Quarantined {
            self.open_left = 0;
            self.trial_left = self.config.trial_polls.max(1);
            self.go(&mut out, BreakerState::HalfOpen, "operator");
            out.actions.push(BreakerAction::Heal);
            out.actions.push(BreakerAction::Nudge);
        }
        out
    }
}

/// Validate an event chain (per target): the first edge must leave
/// `Closed`, every edge must be legal, and consecutive edges must
/// chain (`to` of one is `from` of the next). Returns a description of
/// the first violation.
pub fn validate_chain<'a>(
    edges: impl IntoIterator<Item = &'a Transition>,
) -> Result<(), String> {
    let mut prev: Option<BreakerState> = None;
    for t in edges {
        if !BreakerState::legal(t.from, t.to) {
            return Err(format!(
                "illegal edge {} -> {} ({})",
                t.from.label(),
                t.to.label(),
                t.reason
            ));
        }
        if let Some(p) = prev {
            if p != t.from {
                return Err(format!(
                    "broken chain: edge leaves {} but machine was in {}",
                    t.from.label(),
                    p.label()
                ));
            }
        } else if t.from != BreakerState::Closed {
            return Err(format!("first edge leaves {}, not closed", t.from.label()));
        }
        prev = Some(t.to);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use BreakerAction::*;
    use BreakerState::*;
    use Finding::*;

    fn drive(b: &mut Breaker, findings: &[Finding]) -> Vec<Transition> {
        findings
            .iter()
            .flat_map(|f| b.step(*f).transitions)
            .collect()
    }

    #[test]
    fn stall_opens_via_suspect_in_one_poll() {
        let mut b = Breaker::default();
        let step = b.step(Stall);
        assert_eq!(
            step.transitions
                .iter()
                .map(|t| (t.from, t.to))
                .collect::<Vec<_>>(),
            vec![(Closed, Suspect), (Suspect, Quarantined)]
        );
        assert_eq!(step.actions, vec![Quarantine, Nudge]);
        assert_eq!(b.state(), Quarantined);
    }

    #[test]
    fn poison_needs_patience_before_opening() {
        let mut b = Breaker::default();
        assert_eq!(b.step(Poison).transitions, vec![Transition {
            from: Closed,
            to: Suspect,
            reason: "poison"
        }]);
        // One more poison poll reaches suspect_patience = 2 and opens.
        let step = b.step(Poison);
        assert_eq!(b.state(), Quarantined);
        assert_eq!(step.actions, vec![Quarantine, Nudge]);
    }

    #[test]
    fn suspect_recovers_to_closed_on_clear() {
        let mut b = Breaker::default();
        b.step(Poison);
        let step = b.step(Clear);
        assert_eq!(b.state(), Closed);
        assert_eq!(step.transitions[0].reason, "recovered");
        assert!(step.actions.is_empty());
    }

    #[test]
    fn full_cycle_heals_and_rearms() {
        let mut b = Breaker::default();
        b.step(Stall); // open, dwell = 2 polls at level 0
        let edges = drive(&mut b, &[Clear, Clear]); // serve dwell
        assert_eq!(b.state(), HalfOpen);
        assert_eq!(edges.last().map(|t| t.reason), Some("backoff-elapsed"));
        let edges = drive(&mut b, &[Clear, Clear]); // trial window
        assert_eq!(b.state(), Healed);
        assert_eq!(edges.last().map(|t| t.reason), Some("trial-clean"));
        let edges = drive(&mut b, &[Clear]);
        assert_eq!(b.state(), Closed);
        assert_eq!(edges.last().map(|t| t.reason), Some("rearmed"));
        assert_eq!(b.level(), 0, "clean heal paid the level back");
    }

    #[test]
    fn fault_during_trial_reopens_with_longer_sentence() {
        let mut b = Breaker::default();
        b.step(Stall);
        assert_eq!(b.level(), 1);
        drive(&mut b, &[Clear, Clear]); // -> HalfOpen
        let step = b.step(Stall); // trial fails
        assert_eq!(b.state(), Quarantined);
        assert_eq!(step.transitions, vec![Transition {
            from: HalfOpen,
            to: Quarantined,
            reason: "stall"
        }]);
        assert_eq!(b.level(), 2);
        // The second sentence is twice as long: 4 clear polls to reach
        // HalfOpen again (dwell was set from level 1).
        drive(&mut b, &[Clear, Clear, Clear]);
        assert_eq!(b.state(), Quarantined);
        drive(&mut b, &[Clear]);
        assert_eq!(b.state(), HalfOpen);
    }

    #[test]
    fn persistent_fault_extends_the_dwell_without_requarantining() {
        let mut b = Breaker::default();
        let first = b.step(Stall);
        assert_eq!(
            first.actions.iter().filter(|a| **a == Quarantine).count(),
            1
        );
        for _ in 0..10 {
            let step = b.step(Stall);
            assert!(step.transitions.is_empty(), "stays open, no re-entry");
            assert!(
                !step.actions.contains(&Quarantine),
                "no quarantine spam while already open"
            );
            assert!(step.actions.contains(&Nudge), "still rescuing waiters");
        }
        assert_eq!(b.state(), Quarantined);
    }

    #[test]
    fn operator_overrides_walk_legal_paths() {
        let mut b = Breaker::default();
        let step = b.force_open();
        assert!(validate_chain(step.transitions.iter()).is_ok());
        assert_eq!(b.state(), Quarantined);
        assert!(b.force_open().is_empty(), "already open: no-op");
        let step = b.force_probe();
        assert_eq!(b.state(), HalfOpen);
        assert_eq!(step.actions, vec![Heal, Nudge]);
        assert!(b.force_probe().is_empty(), "probe only applies when open");
    }

    #[test]
    fn validate_chain_rejects_skips_and_breaks() {
        let skip = [Transition {
            from: Closed,
            to: Quarantined,
            reason: "bogus",
        }];
        assert!(validate_chain(skip.iter()).is_err());
        let broken = [
            Transition {
                from: Closed,
                to: Suspect,
                reason: "stall",
            },
            Transition {
                from: HalfOpen,
                to: Healed,
                reason: "trial-clean",
            },
        ];
        assert!(validate_chain(broken.iter()).is_err());
    }
}
