//! The breaker hub: a live registry of named locks, each supervised by
//! a [`Breaker`], polled on an interval.
//!
//! The hub is the impure half of the lifecycle: each poll snapshots
//! every target's [`LockHealth`], reduces the delta against the
//! previous snapshot to a [`Finding`], steps the pure state machine,
//! and applies whatever [`BreakerAction`]s it returns. Every edge taken
//! is appended to a structured [`BreakerEvent`] log (timestamped and
//! poll-numbered) that the soak harness validates and the Chrome-trace
//! exporter renders as counter tracks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;
use thread_monitor::Series;

use crate::breaker::{Breaker, BreakerAction, BreakerConfig, BreakerState, Finding, Transition};
use crate::target::ControlTarget;
use adaptive_native::LockHealth;

/// One structured lifecycle transition, as recorded by the hub.
#[derive(Debug, Clone, Serialize)]
pub struct BreakerEvent {
    /// Name of the lock whose breaker moved.
    pub target: String,
    /// Hub poll sequence number at which the edge was taken (operator
    /// overrides reuse the latest completed poll's number).
    pub poll: u64,
    /// Nanoseconds since the hub was created.
    pub at_nanos: u64,
    /// State before the edge.
    pub from: BreakerState,
    /// State after the edge.
    pub to: BreakerState,
    /// Why the edge was taken.
    pub reason: String,
    /// Waiters observed on the target when the edge was taken.
    pub waiting: u32,
}

struct HubTarget {
    probe: Arc<dyn ControlTarget>,
    breaker: Breaker,
    last: Option<LockHealth>,
}

struct HubInner {
    targets: BTreeMap<String, HubTarget>,
    events: Vec<BreakerEvent>,
}

/// Registry + supervisor. Shared (`Arc`) between the poll loop, the
/// command router, and the workload.
pub struct BreakerHub {
    inner: Mutex<HubInner>,
    config: BreakerConfig,
    start: Instant,
    polls: AtomicU64,
}

impl Default for BreakerHub {
    fn default() -> BreakerHub {
        BreakerHub::new(BreakerConfig::default())
    }
}

impl BreakerHub {
    /// An empty hub.
    pub fn new(config: BreakerConfig) -> BreakerHub {
        BreakerHub {
            inner: Mutex::new(HubInner {
                targets: BTreeMap::new(),
                events: Vec::new(),
            }),
            config,
            start: Instant::now(),
            polls: AtomicU64::new(0),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, HubInner> {
        // The hub keeps working even if a panic unwound through a
        // holder (nothing inside is left half-updated: every mutation
        // is a push or a field store).
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Register a lock under `name` (replacing any previous entry with
    /// that name; its breaker starts closed).
    pub fn register(&self, name: impl Into<String>, probe: Arc<dyn ControlTarget>) {
        self.locked().targets.insert(
            name.into(),
            HubTarget {
                probe,
                breaker: Breaker::new(self.config),
                last: None,
            },
        );
    }

    /// Remove `name` from the registry (a retired lock — e.g. a shard
    /// that was split — stops being polled; its past events stay in the
    /// log). Returns whether the name was known.
    pub fn unregister(&self, name: &str) -> bool {
        self.locked().targets.remove(name).is_some()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.locked().targets.keys().cloned().collect()
    }

    /// Look up a target by name.
    pub fn target(&self, name: &str) -> Option<Arc<dyn ControlTarget>> {
        self.locked().targets.get(name).map(|t| Arc::clone(&t.probe))
    }

    /// Breaker state per target, sorted by name.
    pub fn states(&self) -> Vec<(String, BreakerState)> {
        self.locked()
            .targets
            .iter()
            .map(|(n, t)| (n.clone(), t.breaker.state()))
            .collect()
    }

    /// Completed polls.
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Snapshot the event log.
    pub fn events(&self) -> Vec<BreakerEvent> {
        self.locked().events.clone()
    }

    /// Polls each breaker has spent per state, summed over targets and
    /// keyed by [`BreakerState::label`].
    pub fn dwell_totals(&self) -> BTreeMap<&'static str, u64> {
        let inner = self.locked();
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for state in BreakerState::ALL {
            let sum: u64 = inner
                .targets
                .values()
                .map(|t| t.breaker.dwell_polls(state))
                .sum();
            totals.insert(state.label(), sum);
        }
        totals
    }

    /// Reduce two consecutive health snapshots to this interval's
    /// finding. Ordered by severity of evidence: a fresh policy panic
    /// outranks a fresh poisoning outranks a stall.
    fn finding(prev: &LockHealth, now: &LockHealth) -> Finding {
        if now.policy_panics > prev.policy_panics {
            Finding::PolicyPanic
        } else if now.poisoned && !prev.poisoned {
            Finding::Poison
        } else if now.waiting > 0
            && prev.waiting > 0
            && now.acquisitions == prev.acquisitions
            && now.handoffs == prev.handoffs
        {
            Finding::Stall
        } else {
            Finding::Clear
        }
    }

    fn record(
        inner: &mut HubInner,
        name: &str,
        poll: u64,
        at_nanos: u64,
        waiting: u32,
        transitions: &[Transition],
    ) {
        for t in transitions {
            inner.events.push(BreakerEvent {
                target: name.to_string(),
                poll,
                at_nanos,
                from: t.from,
                to: t.to,
                reason: t.reason.to_string(),
                waiting,
            });
        }
    }

    fn apply(probe: &dyn ControlTarget, actions: &[BreakerAction]) {
        for a in actions {
            match a {
                BreakerAction::Quarantine => probe.quarantine(),
                BreakerAction::Nudge => {
                    probe.nudge();
                }
                BreakerAction::Heal => {
                    probe.heal();
                }
            }
        }
    }

    /// Examine every target once: derive findings, step the breakers,
    /// apply their actions, log the edges. Returns the number of edges
    /// taken this poll. The first poll per target only baselines.
    pub fn poll(&self) -> usize {
        let poll = self.polls.fetch_add(1, Ordering::Relaxed) + 1;
        let at_nanos = self.start.elapsed().as_nanos() as u64;
        let mut inner = self.locked();
        let inner = &mut *inner;
        let mut edges = 0;
        // Step each breaker while borrowing the map mutably; events are
        // buffered per target then appended.
        let names: Vec<String> = inner.targets.keys().cloned().collect();
        for name in names {
            let (transitions, actions, probe, waiting) = {
                let t = inner.targets.get_mut(&name).expect("name from keys()");
                let now = ControlTarget::health(&*t.probe);
                let step = match t.last {
                    Some(prev) => t.breaker.step(Self::finding(&prev, &now)),
                    None => Default::default(),
                };
                t.last = Some(now);
                // While the breaker holds a lock open, keep the
                // mutex-side quarantine in force if its internal
                // backoff ran down first — gated on the mutex's own
                // state, so a long sentence is not a re-quarantine
                // storm.
                if t.breaker.state() == BreakerState::Quarantined
                    && step.transitions.is_empty()
                    && !now.quarantined
                {
                    t.probe.quarantine();
                }
                (step.transitions, step.actions, Arc::clone(&t.probe), now.waiting)
            };
            edges += transitions.len();
            Self::record(inner, &name, poll, at_nanos, waiting, &transitions);
            Self::apply(&*probe, &actions);
        }
        edges
    }

    /// Operator override: force `name`'s breaker open and quarantine
    /// the lock. Returns whether the name was known.
    pub fn force_open(&self, name: &str) -> bool {
        self.override_with(name, |b| b.force_open())
    }

    /// Operator override: end `name`'s dwell and start the half-open
    /// trial now. Returns whether the name was known.
    pub fn force_probe(&self, name: &str) -> bool {
        self.override_with(name, |b| b.force_probe())
    }

    fn override_with(
        &self,
        name: &str,
        f: impl FnOnce(&mut Breaker) -> crate::breaker::BreakerStep,
    ) -> bool {
        let poll = self.polls();
        let at_nanos = self.start.elapsed().as_nanos() as u64;
        let mut inner = self.locked();
        let inner = &mut *inner;
        let Some(t) = inner.targets.get_mut(name) else {
            return false;
        };
        let step = f(&mut t.breaker);
        let waiting = ControlTarget::health(&*t.probe).waiting;
        let probe = Arc::clone(&t.probe);
        Self::record(inner, name, poll, at_nanos, waiting, &step.transitions);
        Self::apply(&*probe, &step.actions);
        true
    }

    /// Render the event log as per-target counter series of the state
    /// code over time ([`BreakerState::code`]), plus one cumulative
    /// `breaker_transitions` series — ready for
    /// [`ChromeTrace::add_counter`](thread_monitor::ChromeTrace::add_counter).
    pub fn state_series(&self) -> Vec<Series> {
        let inner = self.locked();
        let mut per: BTreeMap<String, Series> = BTreeMap::new();
        let mut total = Series::new("breaker_transitions");
        for (i, ev) in inner.events.iter().enumerate() {
            per.entry(ev.target.clone())
                .or_insert_with(|| {
                    let mut s = Series::new(format!("breaker_state:{}", ev.target));
                    // Every breaker starts closed.
                    s.push(0, f64::from(BreakerState::Closed.code()));
                    s
                })
                .push(ev.at_nanos, f64::from(ev.to.code()));
            total.push(ev.at_nanos, (i + 1) as f64);
        }
        let mut out: Vec<Series> = per.into_values().collect();
        out.push(total);
        out
    }

    /// Run the hub on a background thread, polling every `interval`,
    /// until the handle is stopped or dropped.
    pub fn spawn(self: &Arc<Self>, interval: Duration) -> HubHandle {
        let hub = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                hub.poll();
                std::thread::park_timeout(interval);
            }
        });
        HubHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Handle to a background hub poll loop.
pub struct HubHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HubHandle {
    /// Stop and join the poll loop.
    pub fn stop(mut self) {
        self.signal();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    fn signal(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = &self.thread {
            t.thread().unpark();
        }
    }
}

impl Drop for HubHandle {
    fn drop(&mut self) {
        self.signal();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Validate the full hub event log: per target, the edges must form a
/// legal chain from `Closed`. Returns the first violation.
pub fn validate_events(events: &[BreakerEvent]) -> Result<(), String> {
    let mut chains: BTreeMap<&str, Vec<Transition>> = BTreeMap::new();
    for ev in events {
        chains.entry(&ev.target).or_default().push(Transition {
            from: ev.from,
            to: ev.to,
            // Reasons are not part of legality; a static placeholder
            // keeps `Transition` copy-friendly.
            reason: "",
        });
    }
    for (target, chain) in chains {
        crate::breaker::validate_chain(chain.iter())
            .map_err(|e| format!("target {target}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_native::AdaptiveMutex;

    #[test]
    fn stalled_lock_walks_the_full_lifecycle() {
        let hub = BreakerHub::default();
        let m = Arc::new(AdaptiveMutex::new(0u32));
        hub.register("app.lock", m.clone());

        // Wedge it: hold the lock while a real waiter blocks.
        let g = m.lock();
        let m2 = m.clone();
        let waiter = std::thread::spawn(move || drop(m2.lock()));
        while m.waiting_now() == 0 {
            std::thread::yield_now();
        }

        hub.poll(); // baseline
        hub.poll(); // waiting>0 twice, no progress: stall -> open
        assert_eq!(
            hub.states(),
            vec![("app.lock".into(), BreakerState::Quarantined)]
        );
        assert!(m.is_quarantined());

        // Release; the waiter drains. The breaker serves its dwell
        // (clear polls), trials, and heals.
        drop(g);
        waiter.join().expect("waiter completes");
        let mut polls = 0;
        while hub.states()[0].1 != BreakerState::Closed && polls < 32 {
            hub.poll();
            polls += 1;
        }
        assert_eq!(hub.states()[0].1, BreakerState::Closed, "healed and re-armed");
        let events = hub.events();
        validate_events(&events).expect("legal chain");
        assert!(
            events
                .iter()
                .any(|e| e.to == BreakerState::Healed && e.reason == "trial-clean"),
            "must pass through Healed: {events:?}"
        );
        let quarantines = m.stats().quarantines;
        assert!(
            (1..=3).contains(&quarantines),
            "one incident must not spam quarantines, got {quarantines}"
        );
    }

    #[test]
    fn operator_overrides_are_logged_and_applied() {
        let hub = BreakerHub::default();
        let m = Arc::new(AdaptiveMutex::new(()));
        hub.register("db", m.clone());
        assert!(!hub.force_open("nope"));
        assert!(hub.force_open("db"));
        assert!(m.is_quarantined());
        assert_eq!(hub.states()[0].1, BreakerState::Quarantined);
        assert!(hub.force_probe("db"));
        assert!(!m.is_quarantined(), "probe heals the mutex side");
        assert_eq!(hub.states()[0].1, BreakerState::HalfOpen);
        validate_events(&hub.events()).expect("legal chain");
    }

    #[test]
    fn unregister_removes_the_target_but_keeps_its_events() {
        let hub = BreakerHub::default();
        let m = Arc::new(AdaptiveMutex::new(()));
        hub.register("shard-0", m);
        hub.force_open("shard-0");
        assert!(!hub.events().is_empty());
        assert!(hub.unregister("shard-0"));
        assert!(!hub.unregister("shard-0"), "second removal finds nothing");
        assert!(hub.names().is_empty());
        assert_eq!(hub.poll(), 0, "retired targets are no longer polled");
        assert!(!hub.events().is_empty(), "history survives retirement");
    }

    #[test]
    fn state_series_tracks_the_event_log() {
        let hub = BreakerHub::default();
        let m = Arc::new(AdaptiveMutex::new(()));
        hub.register("s", m);
        hub.force_open("s");
        let series = hub.state_series();
        assert_eq!(series.len(), 2, "per-target track + transitions counter");
        let track = &series[0];
        assert!(track.name.contains("s"));
        let last = track.points.last().expect("has points").1;
        assert_eq!(last, f64::from(BreakerState::Quarantined.code()));
    }
}
