//! # adaptive-control
//!
//! The runtime control plane for the native lock stack: the part the
//! paper leaves to the *program* (reconfiguration decided by policies
//! compiled into the object) made *operator-driven* for a production
//! system.
//!
//! Three layers:
//!
//! * **Lifecycle** ([`breaker`], [`hub`]) — every registered lock is
//!   supervised by a circuit breaker, `Closed → Suspect → Quarantined →
//!   HalfOpen → Healed`, driven by the watchdog's findings (stalls,
//!   poisonings, repeated policy panics) with exponential hysteresis on
//!   re-open. The machine is pure and property-tested; the
//!   [`BreakerHub`] applies its decisions to the live locks and logs
//!   every edge as a structured [`BreakerEvent`].
//! * **Commands** ([`plane`], [`socket`]) — a line-oriented router
//!   (`retune`, `set-policy`, `set-algorithm`, `quarantine`, `heal`,
//!   `health`, `snapshot`, …) over an in-process channel or a local
//!   Unix socket, mutating the registry through the same
//!   live-reconfiguration paths the adaptation policies use.
//! * **Telemetry** — [`ControlPlane::snapshot`] renders the whole
//!   registry as Prometheus-style text (via
//!   [`thread_monitor::TextSnapshot`]), and [`BreakerHub::state_series`]
//!   exports the lifecycle as Chrome-trace counter tracks.
//!
//! The chaos soak harness exercising all of this under seeded fault
//! storms lives in `workloads::soak`; `tests/control_soak.rs` and the
//! `bench` `soak` binary drive it.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![deny(unsafe_code)]

pub mod breaker;
pub mod hub;
pub mod plane;
#[cfg(unix)]
pub mod socket;
mod target;

pub use breaker::{
    validate_chain, Breaker, BreakerAction, BreakerConfig, BreakerState, BreakerStep, Finding,
    Transition,
};
pub use hub::{validate_events, BreakerEvent, BreakerHub, HubHandle};
pub use plane::{ControlChannel, ControlPlane};
#[cfg(unix)]
pub use socket::{SocketClient, SocketServer};
pub use target::ControlTarget;
