//! The command router: a line-oriented operator surface over a
//! [`BreakerHub`].
//!
//! One command per line, `ok`/`err` semantics via `Result`, transports
//! layered on top: [`ControlChannel`] (in-process mpsc, for embedding
//! in a service) and [`socket`](crate::socket) (a local Unix socket,
//! for an operator with `nc`). Builtin commands:
//!
//! ```text
//! targets                              list registered lock names
//! health [lock]                        one status line per lock
//! retune <lock> <spin|delay|timeout> <value>   edit one waiting attribute
//! set-policy <lock> <descriptor>       spin | blocking | combined:<n> [+timeout:<ns>]
//! set-algorithm <lock> <label>         spin-park | ticket | clh | flat-combining
//! quarantine <lock>                    force the breaker open
//! heal <lock>                          end the dwell, start the half-open trial
//! clear-poison <lock>                  clear the poison flag
//! snapshot                             Prometheus-style text exposition
//! help                                 this list
//! ```
//!
//! Every mutation goes through the same live-reconfiguration paths the
//! adaptation policies use (`set_waiting_policy`, quiesce-and-switch
//! `set_algorithm`, `quarantine`/`heal`), so an operator command is
//! exactly as safe mid-traffic as a policy decision.

use std::sync::mpsc;
use std::sync::Arc;

use adaptive_native::{LockAlgorithm, NativeWaitingPolicy};
use thread_monitor::TextSnapshot;

use crate::hub::BreakerHub;
use crate::target::{health_line, retune, ControlTarget};

/// The router. Cheap to clone; all clones share the hub.
#[derive(Clone)]
pub struct ControlPlane {
    hub: Arc<BreakerHub>,
}

impl ControlPlane {
    /// A router over `hub`.
    pub fn new(hub: Arc<BreakerHub>) -> ControlPlane {
        ControlPlane { hub }
    }

    /// The hub behind this router.
    pub fn hub(&self) -> &Arc<BreakerHub> {
        &self.hub
    }

    fn target(&self, name: &str) -> Result<Arc<dyn ControlTarget>, String> {
        self.hub
            .target(name)
            .ok_or_else(|| format!("unknown lock {name:?} (try `targets`)"))
    }

    /// Build the Prometheus-style exposition for every registered lock:
    /// per-lock stats gauges, breaker state codes, and hub totals.
    pub fn snapshot(&self) -> TextSnapshot {
        let mut snap = TextSnapshot::new();
        let states = self.hub.states();
        for (name, state) in &states {
            let Some(t) = self.hub.target(name) else {
                continue;
            };
            let labels = [("lock", name.as_str())];
            let s = t.stats();
            let h = ControlTarget::health(&*t);
            snap.gauge("lock_acquisitions_total", &labels, s.acquisitions as f64)
                .gauge("lock_contended_total", &labels, s.contended as f64)
                .gauge("lock_handoffs_total", &labels, s.handoffs as f64)
                .gauge("lock_timeouts_total", &labels, s.timeouts as f64)
                .gauge("lock_poison_events_total", &labels, s.poison_events as f64)
                .gauge("lock_policy_panics_total", &labels, s.policy_panics as f64)
                .gauge("lock_quarantines_total", &labels, s.quarantines as f64)
                .gauge("lock_heals_total", &labels, s.heals as f64)
                .gauge(
                    "lock_algorithm_switches_total",
                    &labels,
                    s.algorithm_switches as f64,
                )
                .gauge("lock_waiting", &labels, f64::from(h.waiting))
                .gauge("lock_poisoned", &labels, u8::from(h.poisoned).into())
                .gauge("lock_quarantined", &labels, u8::from(h.quarantined).into())
                .gauge("breaker_state", &labels, f64::from(state.code()));
        }
        for (label, polls) in self.hub.dwell_totals() {
            snap.gauge("breaker_dwell_polls_total", &[("state", label)], polls as f64);
        }
        snap.gauge("breaker_polls_total", &[], self.hub.polls() as f64)
            .gauge(
                "breaker_transitions_total",
                &[],
                self.hub.events().len() as f64,
            );
        snap
    }

    /// Execute one command line. `Ok` is the (possibly multi-line)
    /// response body; `Err` a one-line diagnostic.
    pub fn execute(&self, line: &str) -> Result<String, String> {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        let arity = |n: usize, usage: &str| -> Result<(), String> {
            if args.len() == n {
                Ok(())
            } else {
                Err(format!("usage: {usage}"))
            }
        };
        match cmd {
            "" => Err("empty command (try `help`)".into()),
            "help" => Ok("commands: targets | health [lock] | \
                          retune <lock> <spin|delay|timeout> <value> | \
                          set-policy <lock> <spin|blocking|combined:N[+timeout:NS]> | \
                          set-algorithm <lock> <spin-park|ticket|clh|flat-combining> | \
                          quarantine <lock> | heal <lock> | clear-poison <lock> | snapshot"
                .into()),
            "targets" => {
                let names = self.hub.names();
                if names.is_empty() {
                    Ok("(no targets registered)".into())
                } else {
                    Ok(names.join("\n"))
                }
            }
            "health" => {
                let states = self.hub.states();
                let one = |name: &str| -> Result<String, String> {
                    let t = self.target(name)?;
                    let state = states
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, s)| s.label())
                        .unwrap_or("unknown");
                    Ok(health_line(name, state, &*t))
                };
                match args.as_slice() {
                    [] => {
                        if states.is_empty() {
                            return Ok("(no targets registered)".into());
                        }
                        let lines: Result<Vec<String>, String> =
                            states.iter().map(|(n, _)| one(n)).collect();
                        Ok(lines?.join("\n"))
                    }
                    [name] => one(name),
                    _ => Err("usage: health [lock]".into()),
                }
            }
            "retune" => {
                arity(3, "retune <lock> <spin|delay|timeout> <value>")?;
                let t = self.target(args[0])?;
                let p = retune(t.waiting_policy(), args[1], args[2])?;
                t.set_waiting_policy(p);
                Ok(format!("retuned {} to {}", args[0], p.descriptor()))
            }
            "set-policy" => {
                arity(2, "set-policy <lock> <spin|blocking|combined:N[+timeout:NS]>")?;
                let t = self.target(args[0])?;
                let p = NativeWaitingPolicy::parse(args[1])
                    .ok_or_else(|| format!("bad policy descriptor {:?}", args[1]))?;
                t.set_waiting_policy(p);
                Ok(format!("policy of {} set to {}", args[0], p.descriptor()))
            }
            "set-algorithm" => {
                arity(2, "set-algorithm <lock> <spin-park|ticket|clh|flat-combining>")?;
                let t = self.target(args[0])?;
                let algo = LockAlgorithm::from_label(args[1])
                    .ok_or_else(|| format!("unknown algorithm {:?}", args[1]))?;
                t.set_algorithm(algo);
                if t.algorithm() == algo {
                    Ok(format!("{} now running {}", args[0], algo.label()))
                } else {
                    Ok(format!(
                        "{} switching to {} (installs at next quiesce)",
                        args[0],
                        algo.label()
                    ))
                }
            }
            "quarantine" => {
                arity(1, "quarantine <lock>")?;
                self.target(args[0])?;
                self.hub.force_open(args[0]);
                Ok(format!("{} breaker forced open", args[0]))
            }
            "heal" => {
                arity(1, "heal <lock>")?;
                self.target(args[0])?;
                self.hub.force_probe(args[0]);
                Ok(format!("{} probing (half-open trial started)", args[0]))
            }
            "clear-poison" => {
                arity(1, "clear-poison <lock>")?;
                let t = self.target(args[0])?;
                if t.clear_poison() {
                    Ok(format!("{} poison cleared", args[0]))
                } else {
                    Ok(format!("{} was not poisoned", args[0]))
                }
            }
            "snapshot" => {
                arity(0, "snapshot")?;
                Ok(self.snapshot().render())
            }
            other => Err(format!("unknown command {other:?} (try `help`)")),
        }
    }
}

type Request = (String, mpsc::Sender<Result<String, String>>);

/// In-process transport: commands in, responses out, over mpsc
/// channels, with the router running on its own thread. Dropping the
/// channel stops the thread.
pub struct ControlChannel {
    tx: mpsc::Sender<Request>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ControlChannel {
    /// Spawn a router thread serving `plane`.
    pub fn spawn(plane: ControlPlane) -> ControlChannel {
        let (tx, rx) = mpsc::channel::<Request>();
        let thread = std::thread::spawn(move || {
            while let Ok((line, reply)) = rx.recv() {
                let _ = reply.send(plane.execute(&line));
            }
        });
        ControlChannel {
            tx,
            thread: Some(thread),
        }
    }

    /// Execute one command on the router thread and wait for the
    /// response. The outer `Err` means the channel is gone.
    pub fn send(&self, line: &str) -> Result<Result<String, String>, String> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send((line.to_string(), reply_tx))
            .map_err(|_| "control channel closed".to_string())?;
        reply_rx
            .recv()
            .map_err(|_| "control channel closed".to_string())
    }
}

impl Drop for ControlChannel {
    fn drop(&mut self) {
        // Close the request side so the router thread's recv() ends.
        let (dead_tx, _) = mpsc::channel();
        self.tx = dead_tx;
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptive_native::{AdaptiveMutex, SPIN_FOREVER};

    fn plane_with(names: &[&str]) -> (ControlPlane, Vec<Arc<AdaptiveMutex<u64>>>) {
        let hub = Arc::new(BreakerHub::default());
        let mut locks = Vec::new();
        for n in names {
            let m = Arc::new(AdaptiveMutex::new(0u64));
            hub.register(*n, m.clone());
            locks.push(m);
        }
        (ControlPlane::new(hub), locks)
    }

    #[test]
    fn targets_and_health_list_the_registry() {
        let (plane, _locks) = plane_with(&["a.lock", "b.lock"]);
        assert_eq!(plane.execute("targets").unwrap(), "a.lock\nb.lock");
        let health = plane.execute("health").unwrap();
        assert_eq!(health.lines().count(), 2);
        assert!(health.contains("a.lock state=closed"));
        let one = plane.execute("health b.lock").unwrap();
        assert!(one.starts_with("b.lock "));
        assert!(plane.execute("health nope").is_err());
    }

    #[test]
    fn retune_and_set_policy_change_the_live_lock() {
        let (plane, locks) = plane_with(&["hot"]);
        plane.execute("retune hot spin forever").unwrap();
        assert_eq!(locks[0].waiting_policy().spin, SPIN_FOREVER);
        plane.execute("retune hot delay 16").unwrap();
        assert_eq!(locks[0].waiting_policy().delay, 16);
        plane.execute("set-policy hot blocking").unwrap();
        assert_eq!(locks[0].waiting_policy().spin, 0);
        assert!(plane.execute("set-policy hot hammock").is_err());
        assert!(plane.execute("retune hot spin").is_err(), "arity checked");
    }

    #[test]
    fn set_algorithm_switches_an_idle_lock_immediately() {
        let (plane, locks) = plane_with(&["z"]);
        let resp = plane.execute("set-algorithm z clh").unwrap();
        assert!(resp.contains("now running clh"), "{resp}");
        assert_eq!(locks[0].algorithm(), LockAlgorithm::Queue);
        assert!(plane.execute("set-algorithm z mcs").is_err());
    }

    #[test]
    fn quarantine_heal_and_clear_poison_round_trip() {
        let (plane, locks) = plane_with(&["q"]);
        plane.execute("quarantine q").unwrap();
        assert!(locks[0].is_quarantined());
        assert!(plane.execute("health q").unwrap().contains("state=quarantined"));
        plane.execute("heal q").unwrap();
        assert!(!locks[0].is_quarantined());
        assert!(plane.execute("health q").unwrap().contains("state=half-open"));
        assert_eq!(
            plane.execute("clear-poison q").unwrap(),
            "q was not poisoned"
        );
    }

    #[test]
    fn snapshot_renders_prometheus_lines_for_every_lock() {
        let (plane, locks) = plane_with(&["s1", "s2"]);
        drop(locks[0].lock());
        let text = plane.execute("snapshot").unwrap();
        assert!(text.contains("lock_acquisitions_total{lock=\"s1\"} 1"));
        assert!(text.contains("breaker_state{lock=\"s2\"} 0"));
        assert!(text.contains("breaker_polls_total 0"));
        assert!(text.contains("breaker_dwell_polls_total{state=\"closed\"}"));
    }

    #[test]
    fn unknown_and_empty_commands_are_errors() {
        let (plane, _locks) = plane_with(&[]);
        assert!(plane.execute("").is_err());
        assert!(plane.execute("frobnicate all").is_err());
        assert_eq!(plane.execute("targets").unwrap(), "(no targets registered)");
    }

    #[test]
    fn channel_transport_serves_commands_from_another_thread() {
        let (plane, _locks) = plane_with(&["c"]);
        let chan = ControlChannel::spawn(plane);
        assert_eq!(chan.send("targets").unwrap().unwrap(), "c");
        assert!(chan.send("bogus").unwrap().is_err());
        for _ in 0..4 {
            assert!(chan.send("health c").unwrap().is_ok());
        }
    }
}
