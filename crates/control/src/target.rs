//! The control plane's view of a lock.
//!
//! [`HealthProbe`](adaptive_native::HealthProbe) is the watchdog's
//! read-mostly surface; operator commands need more: retuning waiting
//! attributes, swapping the engine via the quiesce-and-switch protocol,
//! and explicit heal/clear-poison. [`ControlTarget`] is that richer,
//! value-type-erased surface, implemented for every
//! `AdaptiveMutex<T: Send>` so any lock in the program can be
//! registered by name without the registry caring what it guards.

use std::time::Duration;

use adaptive_native::{
    AdaptiveMutex, LockAlgorithm, LockHealth, MutexStats, NativeWaitingPolicy,
};

/// A named lock the control plane can observe and reconfigure live.
pub trait ControlTarget: Send + Sync {
    /// Snapshot liveness health (same data the watchdog polls).
    fn health(&self) -> LockHealth;

    /// Snapshot the full striped statistics.
    fn stats(&self) -> MutexStats;

    /// Snap to the safe endpoint: pure blocking, adaptation disabled
    /// with exponential backoff.
    fn quarantine(&self);

    /// End a quarantine immediately (adaptation restarts on probation).
    /// Returns whether one was in force.
    fn heal(&self) -> bool;

    /// Try-lock acquire/release to re-run the contended release path,
    /// rescuing lost wakeups. Returns whether the nudge ran.
    fn nudge(&self) -> bool;

    /// Clear the poison flag. Returns whether it was set.
    fn clear_poison(&self) -> bool;

    /// Current waiting-policy attributes.
    fn waiting_policy(&self) -> NativeWaitingPolicy;

    /// Install new waiting-policy attributes.
    fn set_waiting_policy(&self, policy: NativeWaitingPolicy);

    /// The engine currently installed.
    fn algorithm(&self) -> LockAlgorithm;

    /// Request a live engine migration (PR 6's quiesce-and-switch).
    fn set_algorithm(&self, algo: LockAlgorithm);
}

impl<T: Send> ControlTarget for AdaptiveMutex<T> {
    fn health(&self) -> LockHealth {
        adaptive_native::HealthProbe::health(self)
    }

    fn stats(&self) -> MutexStats {
        AdaptiveMutex::stats(self)
    }

    fn quarantine(&self) {
        AdaptiveMutex::quarantine(self);
    }

    fn heal(&self) -> bool {
        AdaptiveMutex::heal(self)
    }

    fn nudge(&self) -> bool {
        adaptive_native::HealthProbe::nudge(self)
    }

    fn clear_poison(&self) -> bool {
        AdaptiveMutex::clear_poison(self)
    }

    fn waiting_policy(&self) -> NativeWaitingPolicy {
        AdaptiveMutex::waiting_policy(self)
    }

    fn set_waiting_policy(&self, policy: NativeWaitingPolicy) {
        AdaptiveMutex::set_waiting_policy(self, policy);
    }

    fn algorithm(&self) -> LockAlgorithm {
        AdaptiveMutex::algorithm(self)
    }

    fn set_algorithm(&self, algo: LockAlgorithm) {
        AdaptiveMutex::set_algorithm(self, algo);
    }
}

/// One `health` line for a target: compact `key=value` pairs.
pub(crate) fn health_line(name: &str, state: &str, t: &dyn ControlTarget) -> String {
    let h = t.health();
    format!(
        "{name} state={state} algo={algo} policy={policy} waiting={waiting} acq={acq} \
         handoffs={handoffs} locked={locked} poisoned={poisoned} quarantined={quarantined} \
         policy_panics={panics}",
        algo = t.algorithm().label(),
        policy = t.waiting_policy().descriptor(),
        waiting = h.waiting,
        acq = h.acquisitions,
        handoffs = h.handoffs,
        locked = h.locked,
        poisoned = h.poisoned,
        quarantined = h.quarantined,
        panics = h.policy_panics,
    )
}

/// Parse a `retune` attribute assignment onto an existing policy.
pub(crate) fn retune(
    mut policy: NativeWaitingPolicy,
    attr: &str,
    value: &str,
) -> Result<NativeWaitingPolicy, String> {
    match attr {
        "spin" => {
            policy.spin = if value == "forever" {
                adaptive_native::SPIN_FOREVER
            } else {
                value.parse().map_err(|_| format!("bad spin count {value:?}"))?
            };
        }
        "delay" => {
            policy.delay = value.parse().map_err(|_| format!("bad delay {value:?}"))?;
        }
        "timeout" => {
            policy.timeout = if value == "none" {
                None
            } else {
                let nanos: u64 =
                    value.parse().map_err(|_| format!("bad timeout nanos {value:?}"))?;
                Some(Duration::from_nanos(nanos))
            };
        }
        other => return Err(format!("unknown attribute {other:?} (spin|delay|timeout)")),
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_mutex_satisfies_the_trait_type_erased() {
        let m = std::sync::Arc::new(AdaptiveMutex::new(vec![1u8, 2, 3]));
        let t: std::sync::Arc<dyn ControlTarget> = m.clone();
        assert!(!t.health().locked);
        t.set_waiting_policy(NativeWaitingPolicy::pure_spin());
        assert_eq!(m.waiting_policy(), NativeWaitingPolicy::pure_spin());
        t.set_algorithm(LockAlgorithm::Ticket);
        assert_eq!(t.algorithm(), LockAlgorithm::Ticket);
        t.quarantine();
        assert!(t.health().quarantined);
        assert!(t.heal());
        assert!(!t.health().quarantined);
        assert!(t.nudge());
        assert!(t.stats().acquisitions >= 1);
    }

    #[test]
    fn retune_edits_one_attribute_at_a_time() {
        let base = NativeWaitingPolicy::combined(32);
        let p = retune(base, "spin", "128").unwrap();
        assert_eq!(p.spin, 128);
        assert_eq!(p.delay, base.delay);
        let p = retune(p, "spin", "forever").unwrap();
        assert_eq!(p.spin, adaptive_native::SPIN_FOREVER);
        let p = retune(p, "delay", "16").unwrap();
        assert_eq!(p.delay, 16);
        let p = retune(p, "timeout", "5000").unwrap();
        assert_eq!(p.timeout, Some(Duration::from_nanos(5000)));
        let p = retune(p, "timeout", "none").unwrap();
        assert_eq!(p.timeout, None);
        assert!(retune(p, "spin", "soon").is_err());
        assert!(retune(p, "jitter", "1").is_err());
    }
}
