//! Cache-line padding for hot shared words.
//!
//! The paper prices every lock operation in memory references
//! (`t = n1·R + n2·W`, Section 3.1) because on the Butterfly a remote
//! reference dominated the cost of a lock; on a modern multicore the
//! analogous unit is a *cache-line transfer* between cores. Two
//! unrelated atomics that happen to share a 64-byte line ping-pong that
//! line between writers even though the program never races on a word —
//! false sharing turns one logical write into a remote transfer for
//! every other user of the line. [`CachePadded`] gives a value its own
//! line so the only transfers left are the ones the protocol actually
//! requires (DESIGN.md §12 maps each lock path to the lines it
//! touches).
//!
//! Alignment is 128 rather than 64: recent Intel parts prefetch lines
//! in adjacent pairs (the "spatial prefetcher" destroys the isolation
//! of a 64-byte pad), and Apple/ARM big cores use 128-byte lines
//! outright. This matches what crossbeam and folly ship.

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes so it occupies its own cache
/// line(s) and cannot false-share with a neighbour.
///
/// ```
/// use adaptive_native::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// let slot = CachePadded::new(AtomicU64::new(0));
/// assert_eq!(std::mem::align_of_val(&slot), 128);
/// assert_eq!(slot.load(std::sync::atomic::Ordering::Relaxed), 0);
/// ```
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` out to its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> CachePadded<T> {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_have_their_own_lines() {
        // Adjacent array elements must be >= 128 bytes apart — the whole
        // point of the type.
        let pair = [CachePadded::new(AtomicU64::new(1)), CachePadded::new(AtomicU64::new(2))];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 128, "elements {a:#x} and {b:#x} share a line pair");
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_and_into_inner_are_transparent() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
        let q: CachePadded<AtomicU64> = AtomicU64::new(7).into();
        assert_eq!(q.load(Ordering::Relaxed), 7);
        assert_eq!(q.into_inner().into_inner(), 7);
    }
}
