//! The common surface of the native lock zoo.
//!
//! The paper's configurable lock separates *interface* from
//! *implementation* so the implementation can be swapped while threads
//! are using the object. [`RawLock`] is the native expression of that
//! split: a value-free mutual-exclusion engine ([`crate::TicketLock`],
//! [`crate::ClhLock`], [`crate::FcLock`]) that `AdaptiveMutex` can
//! drive interchangeably, and [`LockAlgorithm`] names each engine so an
//! adaptation policy can pick one at run time
//! (`NativeDecision::SetAlgorithm`).
//!
//! Every engine follows the PR 5 cache-layout discipline: the words a
//! waiter spins on are [`crate::CachePadded`] so the only line
//! transfers left are the ones the protocol requires (DESIGN.md §13
//! prices each algorithm in the paper's `n1·R + n2·W` terms).

/// A value-free mutual-exclusion engine.
///
/// `release` must only be called by the thread (or, for a moved guard,
/// the owner) that observed `acquire`/`try_acquire` succeed; engines
/// may keep holder-local bookkeeping inside the lock that is protected
/// by the mutual exclusion itself.
pub trait RawLock: Send + Sync {
    /// Block (by spinning — every zoo engine is a spin lock) until the
    /// lock is held.
    fn acquire(&self);

    /// Acquire only if that is possible without waiting.
    fn try_acquire(&self) -> bool;

    /// Release a held lock.
    fn release(&self);

    /// Whether the lock is currently held (racy; for monitoring only).
    fn is_locked(&self) -> bool;

    /// Short label for bench rows and logs.
    fn label(&self) -> &'static str;
}

/// Sentinel for "no algorithm" in the pending-switch word.
pub(crate) const ALGO_NONE: u8 = u8::MAX;

/// Which mutual-exclusion algorithm an `AdaptiveMutex` runs on.
///
/// The default is [`LockAlgorithm::SpinPark`], the adaptive
/// spin-then-park engine whose `{spin, delay, timeout}` attributes the
/// feedback loop retunes; the others are the zoo engines a policy can
/// switch to live via `NativeDecision::SetAlgorithm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LockAlgorithm {
    /// The adaptive spin-then-park engine (test-and-set fast path,
    /// parked waiters with direct handoff, mutable waiting attributes).
    SpinPark = 0,
    /// FIFO ticket lock: two counters, bounded spinning on `serving`.
    Ticket = 1,
    /// CLH queue lock: FIFO handoff with purely local spinning.
    Queue = 2,
    /// Flat combining: a test-and-set engine plus publication slots;
    /// `AdaptiveMutex::with_locked` hands tiny critical sections to the
    /// current holder instead of bouncing the lock line.
    Combining = 3,
}

impl LockAlgorithm {
    /// Every algorithm, in switch-cycle order.
    pub const ALL: [LockAlgorithm; 4] = [
        LockAlgorithm::SpinPark,
        LockAlgorithm::Ticket,
        LockAlgorithm::Queue,
        LockAlgorithm::Combining,
    ];

    /// Label used in bench rows and reports.
    pub fn label(self) -> &'static str {
        match self {
            LockAlgorithm::SpinPark => "spin-park",
            LockAlgorithm::Ticket => "ticket",
            LockAlgorithm::Queue => "clh",
            LockAlgorithm::Combining => "flat-combining",
        }
    }

    /// Decode a [`LockAlgorithm::label`] string, for control-plane
    /// commands (`set-algorithm <lock> clh`). `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<LockAlgorithm> {
        LockAlgorithm::ALL.into_iter().find(|a| a.label() == label)
    }

    /// Decode the `repr(u8)` value; `None` for out-of-range bytes
    /// (including [`ALGO_NONE`]).
    pub(crate) fn from_u8(v: u8) -> Option<LockAlgorithm> {
        match v {
            0 => Some(LockAlgorithm::SpinPark),
            1 => Some(LockAlgorithm::Ticket),
            2 => Some(LockAlgorithm::Queue),
            3 => Some(LockAlgorithm::Combining),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_bytes_round_trip() {
        for algo in LockAlgorithm::ALL {
            assert_eq!(LockAlgorithm::from_u8(algo as u8), Some(algo));
        }
        assert_eq!(LockAlgorithm::from_u8(ALGO_NONE), None);
        assert_eq!(LockAlgorithm::from_u8(4), None);
    }

    #[test]
    fn labels_round_trip() {
        for algo in LockAlgorithm::ALL {
            assert_eq!(LockAlgorithm::from_label(algo.label()), Some(algo));
        }
        assert_eq!(LockAlgorithm::from_label("mcs"), None);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = LockAlgorithm::ALL.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), LockAlgorithm::ALL.len());
    }
}
