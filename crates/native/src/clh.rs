//! Native CLH queue lock: FIFO handoff with purely local spinning.
//!
//! The native analogue of the simulator's `crates/locks/mcs.rs` (same
//! family; CLH spins on the *predecessor's* node where MCS spins on
//! your own, which lets release be a single store with no
//! wait-for-successor handshake). An acquirer publishes a node with one
//! `swap` on `tail` and then spins on its predecessor's `locked` word —
//! a line only those two threads ever touch — so a release invalidates
//! exactly one waiter's line instead of broadcasting to all of them
//! like [`crate::TicketLock`]. In the paper's `n1·R + n2·W` terms the
//! waiting cost is local: one remote write (the `swap`) to enqueue, one
//! remote write (the handoff store) to be granted, and all polling in
//! between hits the waiter's own cache.
//!
//! # Node lifetime
//!
//! CLH nodes outlive the acquire call that created them (the successor
//! spins on ours after we return), so nodes are heap-allocated and
//! *recycled, never freed* while the lock is alive: a retired node goes
//! to a one-slot `spare` cache, overflow goes to a push-only `garbage`
//! stack that is drained in bulk on the next cache miss and freed only
//! in `Drop`. Keeping every node's memory valid for the lock's lifetime
//! is what makes the optimistic reads in [`RawLock::try_acquire`] and
//! [`RawLock::is_locked`] safe: a stale pointer still names a live
//! `ClhNode`, and the `tail` compare-exchange (plus a post-win recheck
//! of the predecessor) rejects stale claims.

use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use crate::raw::RawLock;

/// Spins between yields while polling the predecessor.
const POLL_SPINS: u32 = 64;

/// One queue node. Aligned to its own line pair so a waiter spinning on
/// `locked` never false-shares with a neighbouring node.
#[repr(align(128))]
struct ClhNode {
    /// True from enqueue until the owner releases.
    locked: AtomicBool,
    /// Link used only while the node sits on the `garbage` stack.
    free_next: AtomicPtr<ClhNode>,
}

impl ClhNode {
    fn boxed() -> *mut ClhNode {
        Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(true),
            free_next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// CLH queue lock (native, local spinning).
///
/// ```
/// use adaptive_native::{ClhLock, RawLock};
///
/// let lock = ClhLock::new();
/// lock.acquire();
/// assert!(!lock.try_acquire());
/// lock.release();
/// assert!(lock.try_acquire());
/// lock.release();
/// ```
pub struct ClhLock {
    /// Most recently enqueued node; its `locked` word doubles as the
    /// lock's free/held state when no queue has formed.
    tail: AtomicPtr<ClhNode>,
    /// Node the current holder owns; its release store is the handoff.
    /// Guarded by the mutual exclusion of the lock itself: written
    /// after winning, read at release, never concurrently.
    holder: Cell<*mut ClhNode>,
    /// One-slot recycling cache, so the steady uncontended state
    /// allocates nothing.
    spare: AtomicPtr<ClhNode>,
    /// Push-only overflow stack of retired nodes; drained in bulk when
    /// `spare` misses, freed in `Drop`. Push-only CAS plus swap-all
    /// drain keeps it immune to the ABA problem of a pop-one Treiber
    /// stack.
    garbage: AtomicPtr<ClhNode>,
}

// SAFETY: all cross-thread state is atomic. `holder` is a plain Cell,
// but it is only written by the thread that just won the lock and only
// read by the thread releasing it; those are either the same thread or
// synchronize through whatever moved ownership of the guard between
// them, so the accesses never race.
unsafe impl Send for ClhLock {}
unsafe impl Sync for ClhLock {}

impl ClhLock {
    /// A free CLH lock (allocates the initial dummy node).
    pub fn new() -> ClhLock {
        let dummy = ClhNode::boxed();
        // SAFETY: freshly allocated, unshared.
        unsafe { (*dummy).locked.store(false, Ordering::Relaxed) };
        ClhLock {
            tail: AtomicPtr::new(dummy),
            holder: Cell::new(ptr::null_mut()),
            spare: AtomicPtr::new(ptr::null_mut()),
            garbage: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// A node ready to enqueue (`locked == true`), recycled if possible.
    fn take_node(&self) -> *mut ClhNode {
        let node = self.spare.swap(ptr::null_mut(), Ordering::Acquire);
        let node = if node.is_null() { self.drain_garbage() } else { node };
        if node.is_null() {
            return ClhNode::boxed();
        }
        // SAFETY: a recycled node is exclusively ours until published.
        unsafe { (*node).locked.store(true, Ordering::Relaxed) };
        node
    }

    /// Take the whole garbage stack; keep one node, re-push the rest.
    fn drain_garbage(&self) -> *mut ClhNode {
        let head = self.garbage.swap(ptr::null_mut(), Ordering::Acquire);
        if head.is_null() {
            return head;
        }
        // SAFETY: the swap made the chain exclusively ours.
        let mut rest = unsafe { (*head).free_next.load(Ordering::Relaxed) };
        while !rest.is_null() {
            let next = unsafe { (*rest).free_next.load(Ordering::Relaxed) };
            self.push_garbage(rest);
            rest = next;
        }
        head
    }

    fn push_garbage(&self, node: *mut ClhNode) {
        let mut head = self.garbage.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS below
            // publishes it.
            unsafe { (*node).free_next.store(head, Ordering::Relaxed) };
            match self.garbage.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => head = now,
            }
        }
    }

    /// Recycle a node no thread references any more.
    fn retire(&self, node: *mut ClhNode) {
        if self
            .spare
            .compare_exchange(ptr::null_mut(), node, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        self.push_garbage(node);
    }

    /// Spin until `pred` releases, then take ownership with `node`.
    fn finish_acquire(&self, pred: *mut ClhNode, node: *mut ClhNode) {
        let mut spins = 0u32;
        // SAFETY: `pred` stays allocated for the lock's lifetime, and
        // its owner will not recycle it — *we* retire it below, being
        // its unique successor.
        while unsafe { (*pred).locked.load(Ordering::Acquire) } {
            spins += 1;
            if spins.is_multiple_of(POLL_SPINS) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.retire(pred);
        self.holder.set(node);
    }
}

impl Default for ClhLock {
    fn default() -> ClhLock {
        ClhLock::new()
    }
}

impl RawLock for ClhLock {
    fn acquire(&self) {
        let node = self.take_node();
        let pred = self.tail.swap(node, Ordering::AcqRel);
        self.finish_acquire(pred, node);
    }

    fn try_acquire(&self) -> bool {
        let tail = self.tail.load(Ordering::Acquire);
        // SAFETY: nodes stay allocated for the lock's lifetime, so this
        // optimistic read is always of live memory (possibly stale).
        if unsafe { (*tail).locked.load(Ordering::Acquire) } {
            return false;
        }
        let node = self.take_node();
        if self
            .tail
            .compare_exchange(tail, node, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            self.retire(node);
            return false;
        }
        // Won the enqueue race. In the vanishingly rare case that
        // `tail` was recycled and re-enqueued between our read and the
        // compare-exchange (an ABA on the pointer value), its `locked`
        // word may be true again; we are then a committed FIFO waiter
        // and wait out at most that one predecessor. Normally the spin
        // below exits on its first probe.
        self.finish_acquire(tail, node);
        true
    }

    fn release(&self) {
        let node = self.holder.get();
        debug_assert!(!node.is_null(), "release without a held ClhLock");
        self.holder.set(ptr::null_mut());
        // SAFETY: `node` is the holder's own enqueued node; the
        // successor (or a future acquirer) owns its memory next.
        unsafe { (*node).locked.store(false, Ordering::Release) };
    }

    fn is_locked(&self) -> bool {
        let tail = self.tail.load(Ordering::Acquire);
        // SAFETY: see `try_acquire` — live memory, possibly stale value.
        unsafe { (*tail).locked.load(Ordering::Relaxed) }
    }

    fn label(&self) -> &'static str {
        "clh"
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // &mut self: no concurrent users. Every node is now either the
        // final tail, the spare, or on the garbage stack.
        let free = |p: *mut ClhNode| {
            if !p.is_null() {
                // SAFETY: allocated by `ClhNode::boxed`, unreferenced.
                drop(unsafe { Box::from_raw(p) });
            }
        };
        let mut g = *self.garbage.get_mut();
        while !g.is_null() {
            let next = *unsafe { &mut *g }.free_next.get_mut();
            free(g);
            g = next;
        }
        free(*self.spare.get_mut());
        free(*self.tail.get_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicU64};
    use std::sync::Arc;

    #[test]
    fn exclusion_holds_under_hammering() {
        let lock = Arc::new(ClhLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let inside = Arc::clone(&inside);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        if i.is_multiple_of(5) && lock.try_acquire() {
                            assert_eq!(inside.fetch_add(1, Ordering::Relaxed), 0);
                            counter.fetch_add(1, Ordering::Relaxed);
                            inside.fetch_sub(1, Ordering::Relaxed);
                            lock.release();
                            continue;
                        }
                        lock.acquire();
                        assert_eq!(inside.fetch_add(1, Ordering::Relaxed), 0);
                        counter.fetch_add(1, Ordering::Relaxed);
                        inside.fetch_sub(1, Ordering::Relaxed);
                        lock.release();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 2_000);
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_acquire_fails_while_held() {
        let lock = ClhLock::new();
        assert!(!lock.is_locked());
        lock.acquire();
        assert!(lock.is_locked());
        assert!(!lock.try_acquire());
        lock.release();
        assert!(lock.try_acquire());
        assert!(!lock.try_acquire());
        lock.release();
        assert!(!lock.is_locked());
    }

    #[test]
    fn nodes_recycle_through_spare_and_garbage() {
        let lock = ClhLock::new();
        // Many sequential acquisitions must not grow memory: after the
        // first few, every take_node hits the spare slot.
        for _ in 0..10_000 {
            lock.acquire();
            lock.release();
        }
        // Exercise the garbage path explicitly.
        let extra: Vec<_> = (0..16).map(|_| ClhNode::boxed()).collect();
        for p in extra {
            lock.push_garbage(p);
        }
        for _ in 0..64 {
            lock.acquire();
            lock.release();
        }
        // Drop frees everything (checked by miri/asan-style runs and by
        // not leaking under the 10k-iteration loop above).
    }
}
