//! Striped statistics slabs for the adaptive mutex.
//!
//! The pre-refactor mutex kept its ~dozen counters as plain `AtomicU64`
//! fields packed next to the state word, so every acquire/release did
//! its `fetch_add`s on lines other cores were also writing — each one a
//! remote transfer in the paper's `n1·R + n2·W` cost model. Here the
//! counters live in [`STRIPE_COUNT`] cache-line-padded *stripes*; a
//! thread picks its stripe once (a cheap thread-id hash) and all its
//! counting lands on that one line, which in steady state stays in its
//! core's cache in exclusive state. Totals are only materialized when
//! somebody asks ([`StatSlabs::sum`], an `O(stripes)` relaxed walk) —
//! monitoring pays, the hot path does not.
//!
//! One counter is *not* here: the acquisition count lives on the
//! mutex's state line and is bumped with a plain load + store while the
//! lock is held (ownership serializes the writers), so the hottest
//! counter costs no RMW and no extra line at all — and the sampling
//! gate derives its decision from that same count at acquire time, so
//! a release performs no counter work whatsoever (the decision rides
//! in the guard). The try-lock failure counter is not here either: it
//! paces a sampling gate, and a per-stripe count would make the cadence
//! depend on how many stripes the failing threads spread across, so it
//! lives as one dedicated padded global on the mutex instead.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::pad::CachePadded;

/// Number of counter stripes. A power of two so the thread id reduces
/// with a mask; 8 covers the worker counts this crate is benched at
/// while keeping a slab at 1 KiB.
pub(crate) const STRIPE_COUNT: usize = 8;

/// Counter slots within a stripe (acquisitions are counted on the
/// mutex's state line and try failures on a dedicated global — see the
/// module doc). One slab line holds them all (12 × 8 B = 96 B ≤ 128 B),
/// so a thread's whole off-state-line statistical life touches exactly
/// one line.
pub(crate) const CONTENDED: usize = 0;
pub(crate) const PARKED: usize = 1;
pub(crate) const HANDOFFS: usize = 2;
pub(crate) const RECONFIGURATIONS: usize = 3;
pub(crate) const TIMEOUTS: usize = 4;
pub(crate) const POISON_EVENTS: usize = 5;
pub(crate) const POISON_CLEARS: usize = 6;
pub(crate) const POLICY_PANICS: usize = 7;
pub(crate) const QUARANTINES: usize = 8;
pub(crate) const HEALS: usize = 9;
pub(crate) const SWITCHES: usize = 10;
pub(crate) const COMBINED_OPS: usize = 11;
/// Slots per stripe.
pub(crate) const COUNTER_COUNT: usize = 12;

/// The calling thread's stripe. Assigned round-robin on first use and
/// cached in a thread-local, so the steady-state cost is one TLS read —
/// no hashing, no syscall, and consecutive threads land on distinct
/// stripes (an address hash would collide at the allocator's whim).
#[inline]
pub(crate) fn stripe_index() -> usize {
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let cached = s.get();
        if cached != usize::MAX {
            return cached;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let idx = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPE_COUNT - 1);
        s.set(idx);
        idx
    })
}

/// The striped counter slab: one padded line of counters per stripe.
pub(crate) struct StatSlabs {
    stripes: [CachePadded<[AtomicU64; COUNTER_COUNT]>; STRIPE_COUNT],
}

impl StatSlabs {
    pub(crate) fn new() -> StatSlabs {
        StatSlabs {
            stripes: std::array::from_fn(|_| {
                CachePadded::new(std::array::from_fn(|_| AtomicU64::new(0)))
            }),
        }
    }

    /// Count one event on the calling thread's stripe (relaxed; the
    /// stripe line is exclusive to this core in steady state).
    #[inline]
    pub(crate) fn bump(&self, counter: usize) {
        self.stripes[stripe_index()][counter].fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events at once on the calling thread's stripe — used by
    /// the flat-combining drain, which executes a batch of critical
    /// sections under one hold and charges them with one RMW.
    #[inline]
    pub(crate) fn bump_by(&self, counter: usize, n: u64) {
        self.stripes[stripe_index()][counter].fetch_add(n, Ordering::Relaxed);
    }

    /// Lazy total across stripes (`O(STRIPE_COUNT)` relaxed loads).
    /// Exact once writers are quiescent; a monitoring-grade snapshot
    /// while they run, same as the single-cell counters were.
    pub(crate) fn sum(&self, counter: usize) -> u64 {
        self.stripes
            .iter()
            .map(|s| s[counter].load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for StatSlabs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatSlabs")
            .field("stripes", &STRIPE_COUNT)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn stripes_are_line_isolated() {
        let slabs = StatSlabs::new();
        let a = &slabs.stripes[0] as *const _ as usize;
        let b = &slabs.stripes[1] as *const _ as usize;
        assert!(b - a >= 128, "stripes must not share a line pair");
    }

    #[test]
    fn sums_are_exact_across_threads() {
        let slabs = Arc::new(StatSlabs::new());
        let threads = 8u64;
        let iters = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let slabs = Arc::clone(&slabs);
                s.spawn(move || {
                    for _ in 0..iters {
                        slabs.bump(CONTENDED);
                        slabs.bump_by(SWITCHES, 2);
                    }
                });
            }
        });
        assert_eq!(slabs.sum(CONTENDED), threads * iters);
        assert_eq!(slabs.sum(SWITCHES), 2 * threads * iters);
        assert_eq!(slabs.sum(HEALS), 0);
    }

    #[test]
    fn stripe_index_is_stable_per_thread() {
        let first = stripe_index();
        assert!(first < STRIPE_COUNT);
        for _ in 0..100 {
            assert_eq!(stripe_index(), first);
        }
        // Other threads get valid (not necessarily distinct) stripes.
        let other = std::thread::spawn(stripe_index).join().expect("join");
        assert!(other < STRIPE_COUNT);
    }
}
