//! # adaptive-native
//!
//! The paper's adaptive lock as a real synchronization primitive:
//! [`AdaptiveMutex`] is a spin-then-park mutex for actual threads whose
//! spin count is a run-time-mutable attribute retuned by an adaptation
//! policy (default: the paper's `simple-adapt`) from a built-in monitor
//! of the waiting-thread count, sampled every other unlock.
//!
//! This is the lineage the paper started: adaptive mutexes later
//! appeared in Solaris, glibc (`PTHREAD_MUTEX_ADAPTIVE_NP`), and JVM
//! biased/adaptive locking. Unlike those, the policy here is pluggable
//! ([`BoxedNativePolicy`]) and the adaptation trajectory observable
//! ([`AdaptiveMutex::stats`], [`AdaptiveMutex::spin_limit`]).
//!
//! ```
//! use adaptive_native::AdaptiveMutex;
//! use std::sync::Arc;
//!
//! let counter = Arc::new(AdaptiveMutex::new(0u64));
//! let handles: Vec<_> = (0..4)
//!     .map(|_| {
//!         let c = Arc::clone(&counter);
//!         std::thread::spawn(move || {
//!             for _ in 0..1000 {
//!                 *c.lock() += 1;
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(*counter.lock(), 4000);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod clh;
mod combining;
mod faults;
mod health;
mod mutex;
mod pad;
mod parker;
mod policy;
mod raw;
mod stats;
mod ticket;

pub use clh::ClhLock;
pub use combining::FcLock;
pub use faults::{FaultHook, FaultKind, FaultPlan, FaultReport, FaultSpec, WorkerKilled};
pub use health::{HealthProbe, LockHealth, Watchdog, WatchdogEvent, WatchdogHandle};
pub use mutex::{
    AdaptiveMutex, AdaptiveMutexGuard, BoxedNativePolicy, MutexStats, Poisoned, SPIN_FOREVER,
};
pub use pad::CachePadded;
pub use policy::{
    FixedPolicy, NativeAlgorithmAdapt, NativeDecision, NativeFairnessAdapt, NativeObservation,
    NativeSimpleAdapt, NativeWaitingPolicy, PolicyChoice,
};
pub use raw::{LockAlgorithm, RawLock};
pub use ticket::TicketLock;
