//! A real-thread adaptive mutex with the paper's feedback loop.
//!
//! `AdaptiveMutex<T>` is a spin-then-park mutex whose spin count is a
//! *mutable attribute* retuned at run time by an adaptation policy fed
//! from a built-in monitor (waiter count, sampled every other unlock) —
//! the paper's adaptive lock, thirty years on, on `std` atomics.
//!
//! Protocol (same shape as the simulator's reconfigurable lock, and as
//! glibc's adaptive mutexes): a futex-style state word with an
//! uncontended single-CAS fast path, a short internal guard around the
//! wait queue, and direct handoff to the first queued waiter on release.

#![allow(unsafe_code)] // UnsafeCell + Sync: the point of a mutex.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};

use adaptive_core::{AdaptationPolicy, SamplingGate};

use crate::parker::Waiter;
use crate::policy::{NativeDecision, NativeObservation, NativeSimpleAdapt};

const FREE: u32 = 0;
const HELD: u32 = 1;
const HELD_WAITERS: u32 = 2;

/// Spin-limit value meaning "pure spin" (never park).
pub const SPIN_FOREVER: u32 = u32::MAX;

/// Counters published by the mutex (all relaxed; monitoring only).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MutexStats {
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to wait.
    pub contended: u64,
    /// Acquisitions that parked at least once.
    pub parked: u64,
    /// Reconfigurations applied by the feedback loop.
    pub reconfigurations: u64,
}

/// A boxed native lock adaptation policy.
pub type BoxedNativePolicy =
    Box<dyn AdaptationPolicy<NativeObservation, Decision = NativeDecision> + Send>;

/// The adaptive mutex.
pub struct AdaptiveMutex<T> {
    state: AtomicU32,
    /// Current spin attribute (`no-of-spins`); `SPIN_FOREVER` = pure
    /// spin, `0` = pure blocking.
    spin_limit: AtomicU32,
    /// Current number of waiting threads (the monitored state variable).
    waiters: AtomicU32,
    queue: StdMutex<VecDeque<Arc<Waiter>>>,
    gate: SamplingGate,
    policy: StdMutex<BoxedNativePolicy>,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    parked: AtomicU64,
    reconfigurations: AtomicU64,
    value: UnsafeCell<T>,
}

// SAFETY: the mutex protocol guarantees at most one thread holds the
// lock (single CAS winner or single handoff grantee), and only the
// holder touches `value` through the guard.
unsafe impl<T: Send> Send for AdaptiveMutex<T> {}
unsafe impl<T: Send> Sync for AdaptiveMutex<T> {}

/// RAII guard; releases (and runs the feedback loop) on drop.
pub struct AdaptiveMutexGuard<'a, T> {
    mutex: &'a AdaptiveMutex<T>,
}

impl<T> AdaptiveMutex<T> {
    /// Mutex with the default `simple-adapt` policy (threshold 2,
    /// increment 32 spins) sampling every other unlock, starting from a
    /// moderate combined configuration.
    pub fn new(value: T) -> AdaptiveMutex<T> {
        AdaptiveMutex::with_policy(value, Box::new(NativeSimpleAdapt::new(2, 32)), 2)
    }

    /// Mutex with an explicit adaptation policy and sampling period.
    pub fn with_policy(
        value: T,
        policy: BoxedNativePolicy,
        sample_every: u64,
    ) -> AdaptiveMutex<T> {
        AdaptiveMutex {
            state: AtomicU32::new(FREE),
            spin_limit: AtomicU32::new(64),
            waiters: AtomicU32::new(0),
            queue: StdMutex::new(VecDeque::new()),
            gate: SamplingGate::every(sample_every),
            policy: StdMutex::new(policy),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            reconfigurations: AtomicU64::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquire the mutex.
    pub fn lock(&self) -> AdaptiveMutexGuard<'_, T> {
        // Uncontended fast path: one CAS, like a raw spin lock.
        if self
            .state
            .compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.acquisitions.fetch_add(1, Ordering::Relaxed);
            return AdaptiveMutexGuard { mutex: self };
        }
        self.lock_contended();
        AdaptiveMutexGuard { mutex: self }
    }

    #[cold]
    fn lock_contended(&self) {
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.waiters.fetch_add(1, Ordering::Relaxed);
        let mut did_park = false;
        'acquire: loop {
            // Spin phase, bounded by the mutable spin attribute.
            let limit = self.spin_limit.load(Ordering::Relaxed);
            let mut spins = 0u32;
            loop {
                if self.state.load(Ordering::Relaxed) == FREE
                    && self
                        .state
                        .compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    break 'acquire;
                }
                if limit != SPIN_FOREVER && spins >= limit {
                    break;
                }
                spins = spins.saturating_add(1);
                std::hint::spin_loop();
            }
            // Park phase: register under the guard, CAS-marking the
            // waiters state so release cannot miss us.
            let w = Arc::new(Waiter::new());
            {
                let q = self.queue.lock().unwrap();
                let cur = self.state.load(Ordering::Relaxed);
                if cur == FREE {
                    drop(q);
                    continue; // released meanwhile; re-spin
                }
                if self
                    .state
                    .compare_exchange(cur, HELD_WAITERS, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
                {
                    drop(q);
                    continue;
                }
                let mut q = q;
                q.push_back(Arc::clone(&w));
            }
            did_park = true;
            w.wait();
            // Handoff: the releaser transferred ownership to us.
            break 'acquire;
        }
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if did_park {
            self.parked.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn unlock(&self) {
        // Uncontended fast path.
        if self
            .state
            .compare_exchange(HELD, FREE, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            self.unlock_contended();
        }
        self.adapt();
    }

    #[cold]
    fn unlock_contended(&self) {
        let mut q = self.queue.lock().unwrap();
        match q.pop_front() {
            Some(w) => {
                if q.is_empty() {
                    self.state.store(HELD, Ordering::Relaxed);
                } else {
                    self.state.store(HELD_WAITERS, Ordering::Relaxed);
                }
                drop(q);
                // Release ordering on the grant makes our critical
                // section visible to the new holder.
                w.grant();
            }
            None => {
                self.state.store(FREE, Ordering::Release);
            }
        }
    }

    /// The closely-coupled feedback loop, run inline by the unlocking
    /// thread on sampled unlocks.
    fn adapt(&self) {
        if !self.gate.tick() {
            return;
        }
        let obs = NativeObservation {
            waiting: self.waiters.load(Ordering::Relaxed) as u64,
        };
        // Never contend on the policy: if another unlocker is adapting,
        // skip this sample.
        let Ok(mut policy) = self.policy.try_lock() else {
            return;
        };
        if let Some(decision) = policy.decide(obs) {
            let new_limit = match decision {
                NativeDecision::PureSpin => SPIN_FOREVER,
                NativeDecision::PureBlocking => 0,
                NativeDecision::SetSpins(n) => n,
            };
            if self.spin_limit.swap(new_limit, Ordering::Relaxed) != new_limit {
                self.reconfigurations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Acquire without waiting.
    pub fn try_lock(&self) -> Option<AdaptiveMutexGuard<'_, T>> {
        if self
            .state
            .compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.acquisitions.fetch_add(1, Ordering::Relaxed);
            Some(AdaptiveMutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Current value of the spin attribute.
    pub fn spin_limit(&self) -> u32 {
        self.spin_limit.load(Ordering::Relaxed)
    }

    /// Current waiter count (monitoring).
    pub fn waiting_now(&self) -> u32 {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MutexStats {
        MutexStats {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
            reconfigurations: self.reconfigurations.load(Ordering::Relaxed),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T> Deref for AdaptiveMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the lock.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T> DerefMut for AdaptiveMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus `&mut self` for exclusive reborrow.
        unsafe { &mut *self.mutex.value.get() }
    }
}

impl<T> Drop for AdaptiveMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AdaptiveMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("AdaptiveMutex");
        d.field("spin_limit", &self.spin_limit());
        d.field("waiting", &self.waiting_now());
        match self.try_lock() {
            Some(g) => d.field("value", &*g).finish(),
            None => d.field("value", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn guard_gives_exclusive_access() {
        let m = AdaptiveMutex::new(5u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert_eq!(*g, 6);
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = AdaptiveMutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn counter_hammering_loses_no_updates() {
        let m = Arc::new(AdaptiveMutex::new(0u64));
        let threads = 8;
        let iters = 2_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), threads * iters);
        let s = m.stats();
        assert_eq!(s.acquisitions, threads * iters + 1);
    }

    #[test]
    fn uncontended_usage_converges_to_pure_spin() {
        let m = AdaptiveMutex::new(());
        for _ in 0..16 {
            drop(m.lock());
        }
        assert_eq!(m.spin_limit(), SPIN_FOREVER, "no waiters -> pure spin");
    }

    #[test]
    fn long_holds_drive_spins_down() {
        // Saturate with long critical sections: waiters accumulate and
        // the policy must cut spinning (possibly to pure blocking).
        let m = Arc::new(AdaptiveMutex::with_policy(
            (),
            Box::new(NativeSimpleAdapt::new(0, 16)),
            1,
        ));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..30 {
                        let g = m.lock();
                        std::thread::sleep(Duration::from_micros(300));
                        drop(g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.stats();
        assert!(s.reconfigurations > 0, "policy never fired");
        assert!(s.parked > 0, "nobody ever parked despite long holds");
    }

    #[test]
    fn guard_drop_wakes_waiters_promptly() {
        let m = Arc::new(AdaptiveMutex::with_policy(
            0u32,
            Box::new(NativeSimpleAdapt::new(2, 4)),
            2,
        ));
        // Force pure-blocking mode so the waiter definitely parks.
        let warm = Arc::clone(&m);
        drop(warm.lock());
        m.spin_limit.store(0, Ordering::Relaxed);
        let g = m.lock();
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            *m2.lock() += 1;
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        waiter.join().unwrap();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn debug_format_shows_state() {
        let m = AdaptiveMutex::new(7u8);
        let s = format!("{m:?}");
        assert!(s.contains("spin_limit"));
        assert!(s.contains('7'));
    }
}
