//! A real-thread adaptive mutex with the paper's feedback loop.
//!
//! `AdaptiveMutex<T>` is a spin-then-park mutex whose waiting policy is a
//! *mutable attribute set* `{spin, delay, timeout}` retuned at run time
//! by an adaptation policy fed from a built-in monitor (waiter count,
//! sampled every other unlock) — the paper's adaptive lock, thirty years
//! on, on `std` atomics.
//!
//! Protocol: a single state word packs the `LOCKED` bit, a `QUEUE_LOCKED`
//! maintenance bit, and the head pointer of an *intrusive MCS-style
//! waiter list* (prepend-ordered: head = newest waiter, tail = oldest).
//!
//! * **Acquire** — one CAS on the uncontended fast path; the contended
//!   path spins with bounded exponential backoff (re-reading the mutable
//!   spin attribute periodically, so a reconfiguration is observed even
//!   mid-spin), then enqueues itself with a lock-free CAS prepend and
//!   parks. No internal mutex anywhere.
//! * **Release** — one CAS on the fast path; the contended path takes the
//!   `QUEUE_LOCKED` bit (held only ever by the single lock holder, so it
//!   is uncontended by construction), walks the list pruning abandoned
//!   (timed-out) waiters, dequeues the oldest live waiter, and *directly
//!   hands the lock off* to it: the `LOCKED` bit never clears, ownership
//!   transfers through the waiter's status word.
//! * **Timed acquire** — a timed-out waiter abandons its queue node with
//!   a `WAITING -> ABANDONED` status CAS that races the releaser's
//!   `WAITING -> GRANTED` grant CAS; exactly one side wins, so no lock is
//!   ever lost or double-granted. Abandoned nodes are pruned lazily by
//!   the next contended release (or when the mutex is dropped).
//!
//! Memory layout follows the paper's `n1·R + n2·W` cost model (DESIGN.md
//! §12): the state word, the attribute set, the waiter count, and the
//! feedback machinery each sit on their own [`CachePadded`] line, and
//! the contention statistics live in per-thread-stripe slabs
//! ([`crate::stats`]). The acquisition count shares the state line and
//! is bumped with a plain load + store under the lock, and the sampling
//! gate decides from that same count at acquire time — so an
//! uncontended acquire/release touches exactly *one* line (the state
//! line) and performs no RMW beyond its two CASes, sampled or not.
//!
//! # The engine zoo and live algorithm switching
//!
//! The spin-then-park protocol above is only the *default engine*. The
//! mutex also embeds the native lock zoo — [`crate::TicketLock`],
//! [`crate::ClhLock`], [`crate::FcLock`] — and an adaptation policy (or
//! [`AdaptiveMutex::set_algorithm`]) can migrate a running, contended
//! lock between engines with a quiesce-and-switch protocol:
//!
//! 1. A switch request parks in a `pending` cell; nobody blocks on it.
//! 2. The *releasing holder* consumes the request: it publishes the new
//!    engine in `current` and only then releases the old engine. Only
//!    holders switch, so `current` never changes while anyone is inside
//!    a critical section.
//! 3. Every acquirer re-checks `current` *after* winning its engine: if
//!    the lock migrated while it waited, it releases the stale engine
//!    (waking the next stale waiter, so the drain cascades) and retries
//!    on the new one. No waiter is ever lost — a stale waiter is always
//!    woken by either the switching holder or the stale waiter before
//!    it.
//!
//! Mutual exclusion across the switch: while a thread holds engine `E`
//! with `current == E`, every other thread either waits on `E` or fails
//! the post-acquire re-check and goes to `E` — and `current` cannot
//! move off `E` until the holder itself releases. Value visibility
//! rides the `current` cell: the switching holder stores it with
//! `Release` and every acquirer re-reads it with `Acquire`, so critical
//! sections that cross an engine transition are ordered through that
//! pair (same-engine chains use the engine's own release/acquire).

#![allow(unsafe_code)] // UnsafeCell + intrusive queue: the point of a mutex.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use adaptive_core::AdaptationPolicy;

use crate::clh::ClhLock;
use crate::combining::{FcLock, OpPtr, SlotOutcome};
use crate::faults::FaultHook;
use crate::health::{HealthProbe, LockHealth};
use crate::pad::CachePadded;
use crate::parker::WaitNode;
use crate::policy::{NativeDecision, NativeObservation, NativeSimpleAdapt, NativeWaitingPolicy};
use crate::raw::{LockAlgorithm, RawLock, ALGO_NONE};
use crate::stats::{
    StatSlabs, COMBINED_OPS, CONTENDED, HANDOFFS, HEALS, PARKED, POISON_CLEARS, POISON_EVENTS,
    POLICY_PANICS, QUARANTINES, RECONFIGURATIONS, SWITCHES, TIMEOUTS,
};
use crate::ticket::TicketLock;

/// State-word bit: the lock is held.
const LOCKED: usize = 0b01;
/// State-word bit: a releaser is editing the waiter list.
const QUEUE_LOCKED: usize = 0b10;
const FLAG_MASK: usize = LOCKED | QUEUE_LOCKED;
/// The remaining bits hold the list head (`WaitNode` is 8-aligned).
const PTR_MASK: usize = !FLAG_MASK;

/// Spin-limit value meaning "pure spin" (never park).
pub const SPIN_FOREVER: u32 = u32::MAX;

/// How often the spin phase re-reads the mutable spin attribute, in
/// probes. Keeps a pure-spin waiter responsive to a policy downgrade
/// without adding a load to every probe.
const SPIN_RECHECK_PROBES: u32 = 32;
/// How often a long-spinning waiter yields the processor, in probes —
/// on an oversubscribed host the lock holder needs CPU time to release,
/// so a waiter that has already burned through its backoff ramp (~a few
/// microseconds) must hand the core back often or every spin phase
/// costs a scheduler quantum.
const SPIN_YIELD_PROBES: u32 = 32;
/// How often the timed spin phase consults the clock, in probes.
const SPIN_DEADLINE_PROBES: u32 = 8;

/// Samples skipped by the first quarantine. Each further quarantine
/// doubles the skip (exponential backoff), up to
/// `QUARANTINE_BASE_TICKS << QUARANTINE_MAX_SHIFT`.
const QUARANTINE_BASE_TICKS: u64 = 8;
/// Cap on the quarantine backoff exponent.
const QUARANTINE_MAX_SHIFT: u32 = 10;
/// Successful policy decisions after a re-enable before the backoff
/// level resets (the probation period).
const PROBATION_DECIDES: u64 = 64;

/// Counters published by the mutex (all relaxed; monitoring only).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MutexStats {
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to wait.
    pub contended: u64,
    /// Contended acquires that parked at least once (counted when the
    /// thread first parks, not when it finally acquires).
    pub parked: u64,
    /// Releases that handed the lock directly to a parked waiter.
    pub handoffs: u64,
    /// Reconfigurations applied by the feedback loop.
    pub reconfigurations: u64,
    /// `try_lock` calls that found the lock held (sampled into the
    /// monitor as would-be waiters).
    pub try_failures: u64,
    /// Timed acquires that gave up.
    pub timeouts: u64,
    /// Holders that panicked with the lock held (each one poisoned the
    /// mutex).
    pub poison_events: u64,
    /// Successful [`AdaptiveMutex::clear_poison`] recoveries.
    pub poison_clears: u64,
    /// Adaptation-policy callbacks that panicked (each one triggered a
    /// quarantine).
    pub policy_panics: u64,
    /// Times adaptation was quarantined (snapped to pure blocking and
    /// disabled), by a policy panic or an external watchdog.
    pub quarantines: u64,
    /// Times adaptation was re-enabled after a quarantine ran down.
    pub heals: u64,
    /// Engine migrations actually installed by the quiesce-and-switch
    /// protocol (requests that re-affirmed the current engine are not
    /// counted).
    pub algorithm_switches: u64,
    /// Critical sections executed *for another thread* by a
    /// flat-combining drain (plus the combiner's own published op).
    pub combined_ops: u64,
}

/// A boxed native lock adaptation policy.
pub type BoxedNativePolicy =
    Box<dyn AdaptationPolicy<NativeObservation, Decision = NativeDecision> + Send>;

/// Error of [`AdaptiveMutex::lock_checked`]: the mutex was poisoned by
/// a holder that panicked. Like [`std::sync::PoisonError`], the guard is
/// still inside — poisoning is advisory, mutual exclusion held through
/// the unwind — so a caller that can vouch for (or repair) the protected
/// value takes it with [`Poisoned::into_inner`].
pub struct Poisoned<G> {
    guard: G,
}

impl<G> Poisoned<G> {
    /// Wrap a guard in the poisoned error. Public so runtime ports of
    /// the adaptive mutex (e.g. the async one) surface the *same* error
    /// type from their `lock_checked`, and callers handle poison
    /// identically across backends.
    pub fn new(guard: G) -> Poisoned<G> {
        Poisoned { guard }
    }

    /// Take the guard anyway, accepting that a previous holder died
    /// mid-critical-section.
    pub fn into_inner(self) -> G {
        self.guard
    }

    /// Borrow the guard without consuming the error.
    pub fn get_ref(&self) -> &G {
        &self.guard
    }
}

impl<G> std::fmt::Debug for Poisoned<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poisoned").finish_non_exhaustive()
    }
}

impl<G> std::fmt::Display for Poisoned<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        "adaptive mutex poisoned: a holder panicked in its critical section".fmt(f)
    }
}

impl<G> std::error::Error for Poisoned<G> {}

/// Store `v` only if the cell holds something else; returns whether it
/// stored. The load-compare keeps a re-affirming reconfiguration from
/// dirtying a read-mostly line (a relaxed load of a line in shared
/// state is core-local; any store claims it exclusive and invalidates
/// every reader).
fn store_if_changed_u32(cell: &AtomicU32, v: u32) -> bool {
    if cell.load(Ordering::Relaxed) == v {
        false
    } else {
        cell.store(v, Ordering::Relaxed);
        true
    }
}

/// `u64` twin of [`store_if_changed_u32`].
fn store_if_changed_u64(cell: &AtomicU64, v: u64) -> bool {
    if cell.load(Ordering::Relaxed) == v {
        false
    } else {
        cell.store(v, Ordering::Relaxed);
        true
    }
}

/// Sentinel for "no timeout" in `Attrs::timeout_nanos`.
///
/// `0` used to be the sentinel, which inverted the meaning of a
/// zero-length timeout: `Some(Duration::ZERO)` (or any sub-nanosecond
/// duration, truncated by `as_nanos() as u64`) encoded as `0` and made
/// `lock_conditional` wait *forever* — the exact opposite of "give up
/// immediately". With `u64::MAX` as the sentinel, real timeouts clamp
/// into `1..=u64::MAX - 1`: zero-length waits round up to one
/// nanosecond (a bounded wait that expires on its first deadline
/// check) and durations beyond ~584 years saturate instead of
/// truncating into a small — or sentinel — value.
const TIMEOUT_NONE: u64 = u64::MAX;

/// Encode an optional timeout for the `timeout_nanos` attribute cell.
fn encode_timeout(t: Option<Duration>) -> u64 {
    match t {
        None => TIMEOUT_NONE,
        Some(d) => d.as_nanos().clamp(1, (TIMEOUT_NONE - 1) as u128) as u64,
    }
}

/// The waiter list head + flag bits. A separate type so that dropping
/// the mutex reclaims any abandoned (timed-out) nodes still linked in.
struct QueueWord(AtomicUsize);

impl QueueWord {
    #[inline]
    fn head(s: usize) -> *const WaitNode {
        (s & PTR_MASK) as *const WaitNode
    }
}

/// The state line: the queue word plus the acquisition count, padded
/// together. The count is written with plain load + store — not an
/// atomic RMW — because every writer holds the lock at the time, so the
/// writes are serialized, and the release/acquire chain on the queue
/// word makes each holder see its predecessor's store. Counting an
/// acquisition is therefore two register-width moves on the very line
/// the acquire CAS just made exclusive: zero extra cache traffic.
struct StateLine {
    word: QueueWord,
    acquisitions: AtomicU64,
}

impl Drop for QueueWord {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no thread is using the mutex; every
        // node still linked was leaked into the queue via `Arc::into_raw`
        // by an enqueuer whose wait was abandoned.
        let mut cur = Self::head(*self.0.get_mut());
        while !cur.is_null() {
            let node = unsafe { Arc::from_raw(cur) };
            cur = node.next.get();
        }
    }
}

/// The waiting-attribute set `{spin, delay, timeout}`. Grouped on one
/// read-mostly padded line: spinners re-read it, but it is only written
/// on a reconfiguration (and [`AdaptiveMutex::apply`] skips the store
/// when a decision re-affirms the current value), so in steady state
/// the line is silently shared by every core.
struct Attrs {
    /// `no-of-spins` attribute; `SPIN_FOREVER` = pure spin, `0` = pure
    /// blocking.
    spin_limit: AtomicU32,
    /// `delay` attribute: exponential-backoff cap, in spin-hint units.
    delay: AtomicU32,
    /// `timeout` attribute for conditional acquires, in nanoseconds
    /// ([`TIMEOUT_NONE`] = unbounded; real timeouts are clamped to
    /// `1..=TIMEOUT_NONE - 1` by [`encode_timeout`]).
    timeout_nanos: AtomicU64,
}

/// The engine-selection words, padded together on one read-mostly line:
/// every acquire and release loads `current`, but it is only *stored*
/// when a switch installs, so in steady state the line is silently
/// shared by every core (like the attribute line).
struct EngineMeta {
    /// The engine every acquire and release must go through, as a
    /// `LockAlgorithm` byte. Stored only by a releasing holder (or by
    /// `set_algorithm` on a lock it momentarily acquired), always with
    /// `Release`; re-read by acquirers with `Acquire`.
    current: AtomicU8,
    /// Requested engine awaiting installation ([`ALGO_NONE`] = none).
    /// Consumed by the next releasing holder.
    pending: AtomicU8,
}

/// The native lock zoo embedded in every mutex: the spin-then-park
/// protocol (on the state word) plus one instance of each `RawLock`
/// engine, selected through [`EngineMeta`]. The inactive engines are
/// idle memory — no thread touches their lines until a switch makes
/// one current.
struct Engines {
    meta: CachePadded<EngineMeta>,
    ticket: TicketLock,
    queue: ClhLock,
    combining: FcLock,
}

impl Engines {
    fn new() -> Engines {
        Engines {
            meta: CachePadded::new(EngineMeta {
                current: AtomicU8::new(LockAlgorithm::SpinPark as u8),
                pending: AtomicU8::new(ALGO_NONE),
            }),
            ticket: TicketLock::new(),
            queue: ClhLock::new(),
            combining: FcLock::new(),
        }
    }

    /// The engine acquires and releases must currently go through.
    #[inline]
    fn current(&self) -> LockAlgorithm {
        LockAlgorithm::from_u8(self.meta.current.load(Ordering::Acquire))
            .unwrap_or(LockAlgorithm::SpinPark)
    }

    /// Whether a switch request is parked (release-path fast check).
    #[inline]
    fn has_pending(&self) -> bool {
        self.meta.pending.load(Ordering::Relaxed) != ALGO_NONE
    }

    /// Park a switch request for the next releasing holder.
    fn request(&self, algo: LockAlgorithm) {
        self.meta.pending.store(algo as u8, Ordering::Release);
    }

    /// Take the parked request, if any (at most one consumer wins).
    fn take_pending(&self) -> Option<LockAlgorithm> {
        LockAlgorithm::from_u8(self.meta.pending.swap(ALGO_NONE, Ordering::AcqRel))
    }

    /// Publish `algo` as the current engine. Caller must hold the lock.
    fn install(&self, algo: LockAlgorithm) {
        self.meta.current.store(algo as u8, Ordering::Release);
    }
}

/// The feedback loop's machinery, grouped on its own padded line so a
/// sampled observation (policy guard, quarantine countdown, the policy
/// box itself) never dirties the lines the acquire path reads.
struct Feedback {
    /// Spin-guarded policy slot: samplers skip rather than contend.
    busy: AtomicBool,
    /// Remaining sampled observations to skip while adaptation is
    /// quarantined (`0` = adaptation enabled). Mutated under
    /// `busy` by the countdown; set by `quarantine` from any
    /// thread (racing stores are benign — the longest quarantine wins
    /// or loses a few ticks, never the sticky safety: the snap to pure
    /// blocking already happened).
    quarantine_ticks: AtomicU64,
    /// Exponential-backoff exponent for the *next* quarantine.
    quarantine_level: AtomicU32,
    /// Successful decides remaining until `quarantine_level` resets.
    probation: AtomicU64,
    policy: UnsafeCell<BoxedNativePolicy>,
}

/// The sampling cadence, classified once at construction so the hot
/// path never pays a runtime divide: the common periods (powers of
/// two, including the paper's every-other-unlock `2`) reduce to a
/// mask, and the static-lock sentinels (`0`, `u64::MAX`) to a constant
/// `false`.
#[derive(Debug, Clone, Copy)]
enum SampleGate {
    /// The monitor never fires (period `0` or `u64::MAX` — static
    /// locks whose policy is fixed).
    Never,
    /// Power-of-two period `p`: fires when `count & (p - 1) == 0`.
    Mask(u64),
    /// Arbitrary period: one integer divide per gate event.
    Modulo(u64),
}

impl SampleGate {
    fn new(period: u64) -> SampleGate {
        match period {
            0 | u64::MAX => SampleGate::Never,
            p if p.is_power_of_two() => SampleGate::Mask(p - 1),
            p => SampleGate::Modulo(p),
        }
    }

    /// Whether the `count`-th event of its stream is a sample.
    #[inline]
    fn fires(self, count: u64) -> bool {
        match self {
            SampleGate::Never => false,
            SampleGate::Mask(m) => count & m == 0,
            SampleGate::Modulo(p) => count.is_multiple_of(p),
        }
    }
}

/// The adaptive mutex.
///
/// Field order is the cache layout (DESIGN.md §12): one exclusive line
/// for the state word, one read-mostly line for the attributes, one
/// write-on-contention line for the waiter count, a striped slab for
/// the statistics, and one line for the feedback machinery. The cold
/// tail (poison flag, sampling gate, fault hook, value) shares
/// whatever is left.
pub struct AdaptiveMutex<T> {
    state: CachePadded<StateLine>,
    attrs: CachePadded<Attrs>,
    /// Engine selection plus the zoo itself (each engine pads its own
    /// hot words).
    engines: Engines,
    /// Current number of waiting threads (the monitored state variable).
    /// Padded: contended acquires RMW it, and it must not invalidate
    /// the state word's line when they do.
    waiters: CachePadded<AtomicU32>,
    /// Longest single contended wait (enter-to-acquired, ns) observed
    /// since the previous monitor sample — the cheap online proxy for
    /// the per-thread fairness signal. Written with a relaxed
    /// `fetch_max` by contended acquirers (who already paid a park or a
    /// spin phase) and consumed with `swap(0)` by the sampled monitor,
    /// so each observation reports the worst wait of its own window.
    /// Shares the waiter-count pattern: padded, off the state line.
    max_wait: CachePadded<AtomicU64>,
    /// Striped contention/failure counters (acquisitions live on the
    /// state line instead).
    stats: StatSlabs,
    /// Failed `try_lock` count, pacing the failure stream's sampling
    /// gate. One *global* padded cell, not a stripe slot: the gate
    /// period must mean "every N-th failed try" regardless of how many
    /// stripes the failing threads spread across (a per-stripe count
    /// multiplied the effective period by up to the stripe count), and
    /// only the failure path writes it, so it costs the acquire/release
    /// hot path nothing.
    try_failures: CachePadded<AtomicU64>,
    feedback: CachePadded<Feedback>,
    /// Sticky poison flag: a holder panicked with the lock held.
    poisoned: AtomicBool,
    /// Monitor sampling cadence (immutable; every `period`-th gate
    /// event *per stripe* feeds the policy).
    gate: SampleGate,
    /// Optional fault-injection hook (tests); one relaxed load on the
    /// contended release and sampled-observation paths when unset.
    fault_hook: OnceLock<Arc<dyn FaultHook>>,
    value: UnsafeCell<T>,
}

// SAFETY: the mutex protocol guarantees at most one thread holds the
// lock (single CAS winner or single status-word handoff grantee), and
// only the holder touches `value` through the guard. The policy slot is
// guarded by `feedback.busy`.
unsafe impl<T: Send> Send for AdaptiveMutex<T> {}
unsafe impl<T: Send> Sync for AdaptiveMutex<T> {}

/// RAII guard; releases (and runs the feedback loop) on drop.
pub struct AdaptiveMutexGuard<'a, T> {
    mutex: &'a AdaptiveMutex<T>,
    /// Whether this acquisition's unlock is a monitor sample. Decided
    /// at acquire time from the same state-line count that records the
    /// acquisition, so the release path does no counter work at all.
    adapt: bool,
}

impl<T> AdaptiveMutex<T> {
    /// Mutex with the default `simple-adapt` policy (threshold 2,
    /// increment 32 spins) sampling every other unlock, starting from a
    /// moderate combined configuration.
    pub fn new(value: T) -> AdaptiveMutex<T> {
        AdaptiveMutex::with_policy(value, Box::new(NativeSimpleAdapt::new(2, 32)), 2)
    }

    /// Mutex with an explicit adaptation policy and sampling period.
    pub fn with_policy(
        value: T,
        policy: BoxedNativePolicy,
        sample_every: u64,
    ) -> AdaptiveMutex<T> {
        let initial = NativeWaitingPolicy::default();
        AdaptiveMutex {
            state: CachePadded::new(StateLine {
                word: QueueWord(AtomicUsize::new(0)),
                acquisitions: AtomicU64::new(0),
            }),
            attrs: CachePadded::new(Attrs {
                spin_limit: AtomicU32::new(initial.spin),
                delay: AtomicU32::new(initial.delay),
                timeout_nanos: AtomicU64::new(encode_timeout(initial.timeout)),
            }),
            engines: Engines::new(),
            waiters: CachePadded::new(AtomicU32::new(0)),
            max_wait: CachePadded::new(AtomicU64::new(0)),
            stats: StatSlabs::new(),
            try_failures: CachePadded::new(AtomicU64::new(0)),
            feedback: CachePadded::new(Feedback {
                busy: AtomicBool::new(false),
                quarantine_ticks: AtomicU64::new(0),
                quarantine_level: AtomicU32::new(0),
                probation: AtomicU64::new(0),
                policy: UnsafeCell::new(policy),
            }),
            poisoned: AtomicBool::new(false),
            gate: SampleGate::new(sample_every),
            fault_hook: OnceLock::new(),
            value: UnsafeCell::new(value),
        }
    }

    /// Count this acquisition and decide — from the same count — whether
    /// its unlock is a monitor sample. Called with the lock held, so the
    /// plain load + store is race-free (see [`StateLine`]) and lands on
    /// the already-exclusive state line: counting and pacing together
    /// cost no atomic RMW and no extra line.
    #[inline]
    fn charge_acquisition(&self) -> bool {
        let n = self.state.acquisitions.load(Ordering::Relaxed) + 1;
        self.state.acquisitions.store(n, Ordering::Relaxed);
        self.gate.fires(n)
    }

    /// Acquire the mutex.
    pub fn lock(&self) -> AdaptiveMutexGuard<'_, T> {
        let acquired = self.acquire(None);
        debug_assert!(acquired, "untimed acquire cannot fail");
        AdaptiveMutexGuard { mutex: self, adapt: self.charge_acquisition() }
    }

    /// Acquire through the current engine, re-dispatching across any
    /// live switch (see the module doc). Returns whether the lock was
    /// acquired — always, when `deadline` is `None`.
    fn acquire(&self, deadline: Option<Instant>) -> bool {
        let mut algo = self.engines.current();
        loop {
            let got = match algo {
                LockAlgorithm::SpinPark => {
                    // Uncontended fast path: one CAS, like a raw spin
                    // lock.
                    self.state
                        .word
                        .0
                        .compare_exchange(0, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                        || self.lock_contended(deadline)
                }
                LockAlgorithm::Ticket => self.acquire_zoo(&self.engines.ticket, deadline),
                LockAlgorithm::Queue => self.acquire_zoo(&self.engines.queue, deadline),
                LockAlgorithm::Combining => self.acquire_zoo(&self.engines.combining, deadline),
            };
            if !got {
                return false;
            }
            // Quiesce-and-switch re-check: a holder may have migrated
            // the lock while we waited on engine `algo`. If so, release
            // the stale engine (cascading the drain to the next stale
            // waiter) and retry on the new one; the deadline still
            // applies. `current` cannot change under us once it names
            // the engine we hold — only a holder switches, and a
            // would-be switcher must first acquire through `now`.
            let now = self.engines.current();
            if now == algo {
                return true;
            }
            self.release_engine(algo);
            algo = now;
        }
    }

    /// Contended acquire on a zoo engine. Stats and the waiter count
    /// work exactly like [`AdaptiveMutex::lock_contended`]; the wait
    /// itself is the engine's. A timed wait polls `try_acquire` instead
    /// of joining the queue — a zoo engine's queue slot cannot be
    /// abandoned, so a timed waiter must never enter it (FIFO order is
    /// therefore not guaranteed for timed acquires on zoo engines).
    #[cold]
    fn acquire_zoo(&self, raw: &dyn RawLock, deadline: Option<Instant>) -> bool {
        if raw.try_acquire() {
            return true;
        }
        self.stats.bump(CONTENDED);
        self.waiters.fetch_add(1, Ordering::Relaxed);
        let wait_start = Instant::now();
        let acquired = match deadline {
            None => {
                raw.acquire();
                true
            }
            Some(d) => {
                let mut backoff: u32 = 1;
                let mut probes: u32 = 0;
                loop {
                    if raw.try_acquire() {
                        break true;
                    }
                    probes = probes.wrapping_add(1);
                    if probes.is_multiple_of(SPIN_DEADLINE_PROBES) && Instant::now() >= d {
                        break false;
                    }
                    for _ in 0..backoff {
                        std::hint::spin_loop();
                    }
                    backoff = (backoff << 1).min(self.attrs.delay.load(Ordering::Relaxed).max(1));
                    if probes.is_multiple_of(SPIN_YIELD_PROBES) {
                        std::thread::yield_now();
                    }
                }
            }
        };
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        if acquired {
            self.note_wait(wait_start);
        } else {
            self.stats.bump(TIMEOUTS);
        }
        acquired
    }

    /// Try-acquire through the current engine, re-dispatching across
    /// any live switch. No stats, no monitor feed — callers decide what
    /// a failure means.
    fn try_acquire_raw(&self) -> bool {
        let mut algo = self.engines.current();
        loop {
            let got = match algo {
                LockAlgorithm::SpinPark => self.try_acquire_spin_park(),
                LockAlgorithm::Ticket => self.engines.ticket.try_acquire(),
                LockAlgorithm::Queue => self.engines.queue.try_acquire(),
                LockAlgorithm::Combining => self.engines.combining.try_acquire(),
            };
            if !got {
                return false;
            }
            let now = self.engines.current();
            if now == algo {
                return true;
            }
            self.release_engine(algo);
            algo = now;
        }
    }

    /// One non-waiting claim of the spin-park state word.
    fn try_acquire_spin_park(&self) -> bool {
        let mut s = self.state.word.0.load(Ordering::Relaxed);
        loop {
            if s & LOCKED != 0 {
                return false;
            }
            match self.state.word.0.compare_exchange_weak(
                s,
                s | LOCKED,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(e) => s = e,
            }
        }
    }

    /// Acquire the mutex, reporting poisoning. Exactly
    /// [`AdaptiveMutex::lock`] — same protocol, same infallibility — but
    /// a caller that cares whether a previous holder died
    /// mid-critical-section learns it from the `Err` arm (which still
    /// carries the guard; see [`Poisoned`]).
    pub fn lock_checked(&self) -> Result<AdaptiveMutexGuard<'_, T>, Poisoned<AdaptiveMutexGuard<'_, T>>> {
        let guard = self.lock();
        if self.poisoned.load(Ordering::Acquire) {
            Err(Poisoned::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Whether a holder has panicked with the lock held. Sticky until
    /// [`AdaptiveMutex::clear_poison`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Un-poison the mutex after verifying (or repairing) the protected
    /// value. Returns whether it was poisoned — `true` means a recovery
    /// actually happened, and is counted in [`MutexStats::poison_clears`].
    pub fn clear_poison(&self) -> bool {
        let was = self.poisoned.swap(false, Ordering::AcqRel);
        if was {
            self.stats.bump(POISON_CLEARS);
        }
        was
    }

    /// Acquire with a bound on the wait. Returns `None` if `timeout`
    /// elapses first; the attempt leaves no trace beyond an abandoned
    /// queue node that the next contended release prunes.
    pub fn lock_timeout(&self, timeout: Duration) -> Option<AdaptiveMutexGuard<'_, T>> {
        if self.try_acquire_raw() {
            return Some(AdaptiveMutexGuard { mutex: self, adapt: self.charge_acquisition() });
        }
        // A timeout too large for the clock to represent is no bound at
        // all (`None` deadline = untimed), not an instant failure.
        let deadline = Instant::now().checked_add(timeout);
        if self.acquire(deadline) {
            Some(AdaptiveMutexGuard { mutex: self, adapt: self.charge_acquisition() })
        } else {
            None
        }
    }

    /// *Conditional* acquire, bounded by the mutable `timeout` attribute
    /// (the paper's conditional sleep/spin row). With the attribute
    /// unset this is a plain [`AdaptiveMutex::lock`].
    pub fn lock_conditional(&self) -> Option<AdaptiveMutexGuard<'_, T>> {
        match self.attrs.timeout_nanos.load(Ordering::Relaxed) {
            TIMEOUT_NONE => Some(self.lock()),
            ns => self.lock_timeout(Duration::from_nanos(ns)),
        }
    }

    /// The contended path: spin (bounded, with backoff), then enqueue and
    /// park. Returns whether the lock was acquired (always, when
    /// `deadline` is `None`).
    #[cold]
    fn lock_contended(&self, deadline: Option<Instant>) -> bool {
        self.stats.bump(CONTENDED);
        self.waiters.fetch_add(1, Ordering::Relaxed);
        let wait_start = Instant::now();
        let acquired = 'acquire: {
            // --- Spin phase, bounded by the mutable spin attribute. ---
            let mut limit = self.attrs.spin_limit.load(Ordering::Relaxed);
            let mut probes: u32 = 0;
            let mut backoff: u32 = 1;
            loop {
                let s = self.state.word.0.load(Ordering::Relaxed);
                if s & LOCKED == 0
                    && self
                        .state
                        .word
                        .0
                        .compare_exchange_weak(s, s | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    break 'acquire true;
                }
                if limit != SPIN_FOREVER && probes >= limit {
                    break;
                }
                probes = probes.wrapping_add(1);
                // Bounded exponential backoff between probes.
                for _ in 0..backoff {
                    std::hint::spin_loop();
                }
                backoff = (backoff << 1).min(self.attrs.delay.load(Ordering::Relaxed).max(1));
                // Re-read the mutable attribute periodically: a waiter
                // spinning under SPIN_FOREVER must observe a policy
                // downgrade to blocking instead of burning a core
                // forever.
                if probes.is_multiple_of(SPIN_RECHECK_PROBES) {
                    limit = self.attrs.spin_limit.load(Ordering::Relaxed);
                    if probes.is_multiple_of(SPIN_YIELD_PROBES) {
                        std::thread::yield_now();
                    }
                }
                if let Some(d) = deadline {
                    if probes.is_multiple_of(SPIN_DEADLINE_PROBES) && Instant::now() >= d {
                        break 'acquire false;
                    }
                }
            }

            // --- Park phase: lock-free CAS prepend onto the waiter
            // list, marked in the same state word so release cannot
            // miss us. ---
            let node = Arc::new(WaitNode::new());
            let node_ptr = Arc::into_raw(Arc::clone(&node));
            let mut enqueued = false;
            loop {
                let s = self.state.word.0.load(Ordering::Relaxed);
                if s & LOCKED == 0 {
                    if self
                        .state
                        .word
                        .0
                        .compare_exchange_weak(s, s | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        break;
                    }
                    continue;
                }
                node.next.set(QueueWord::head(s));
                // Release ordering publishes `next` to list walkers.
                if self
                    .state
                    .word
                    .0
                    .compare_exchange_weak(
                        s,
                        node_ptr as usize | (s & FLAG_MASK),
                        Ordering::Release,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    enqueued = true;
                    break;
                }
            }
            if !enqueued {
                // Took the lock in the enqueue window; reclaim the ref
                // that was meant for the queue.
                // SAFETY: the node was never published.
                unsafe { drop(Arc::from_raw(node_ptr)) };
                break 'acquire true;
            }
            self.stats.bump(PARKED);
            match deadline {
                None => {
                    node.wait();
                    // Direct handoff: the releaser transferred ownership.
                    break 'acquire true;
                }
                Some(d) => {
                    if node.wait_deadline(d) {
                        break 'acquire true;
                    }
                    if node.try_abandon() {
                        // Timed out; the node stays linked (harmless) and
                        // is pruned by the next contended release.
                        break 'acquire false;
                    }
                    // A grant landed just as the deadline passed; the
                    // handoff already happened, so we own the lock.
                    break 'acquire true;
                }
            }
        };
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        // Acquisitions are charged by the caller when it builds the
        // guard (the charge also decides the guard's sample flag).
        if acquired {
            self.note_wait(wait_start);
        } else {
            self.stats.bump(TIMEOUTS);
        }
        acquired
    }

    /// Record a completed contended wait into the per-window maximum
    /// (the monitor's fairness proxy). Two clock reads per *contended*
    /// acquisition — noise next to the spin phase or park it just paid.
    fn note_wait(&self, since: Instant) {
        let ns = since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.max_wait.fetch_max(ns, Ordering::Relaxed);
    }

    /// Release (and hand off) without feeding the monitor. Sampling is
    /// the guard's job — its `adapt` flag, decided at acquire time,
    /// says whether this unlock feeds the policy — and the unwind path
    /// uses this directly: a panicking holder must still wake its
    /// waiters, but it must not run the adaptation policy, so the
    /// feedback loop's state looks exactly as if that acquisition's
    /// unlock was never sampled.
    fn unlock_raw(&self) {
        let algo = self.engines.current();
        // Quiesce-and-switch: the releasing holder is the only thread
        // that may move `current` (nobody is inside a critical section,
        // and every in-flight acquirer re-checks after it wins). Install
        // the pending engine *before* releasing the old one, so the
        // thread we wake — and everyone behind it — re-dispatches.
        if self.engines.has_pending() {
            self.consume_pending_switch(algo);
        }
        self.release_engine(algo);
    }

    /// Release engine `algo` without consuming a pending switch — used
    /// by the release half of [`AdaptiveMutex::unlock_raw`] and by
    /// acquirers backing off an engine the lock migrated away from.
    fn release_engine(&self, algo: LockAlgorithm) {
        match algo {
            LockAlgorithm::SpinPark => {
                // Uncontended fast path: queue empty, just clear LOCKED.
                if self
                    .state
                    .word
                    .0
                    .compare_exchange(LOCKED, 0, Ordering::Release, Ordering::Relaxed)
                    .is_err()
                {
                    self.unlock_contended();
                }
            }
            LockAlgorithm::Ticket => self.engines.ticket.release(),
            LockAlgorithm::Queue => self.engines.queue.release(),
            LockAlgorithm::Combining => self.engines.combining.release(),
        }
    }

    /// Consume a parked switch request while holding engine `from`.
    #[cold]
    fn consume_pending_switch(&self, from: LockAlgorithm) {
        let Some(to) = self.engines.take_pending() else {
            return; // raced another consumer (e.g. set_algorithm's probe)
        };
        if to == from {
            return;
        }
        self.engines.install(to);
        self.stats.bump(SWITCHES);
    }

    #[cold]
    fn unlock_contended(&self) {
        let mut s = self.state.word.0.load(Ordering::Acquire);
        loop {
            debug_assert!(s & LOCKED != 0, "unlock of an unheld mutex");
            if s & PTR_MASK == 0 {
                // Queue empty after all (the fast path raced an enqueue
                // that then won the lock another way): plain release.
                match self.state.word.0.compare_exchange_weak(
                    s,
                    s & !LOCKED,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return,
                    Err(e) => {
                        s = e;
                        continue;
                    }
                }
            }
            // Take the maintenance bit. Only the (single) lock holder
            // ever holds it, so this CAS only retries on concurrent
            // enqueues.
            debug_assert_eq!(s & QUEUE_LOCKED, 0);
            match self.state.word.0.compare_exchange_weak(
                s,
                s | QUEUE_LOCKED,
                Ordering::Acquire,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(e) => s = e,
            }
        }
        // SAFETY: we hold LOCKED and QUEUE_LOCKED.
        unsafe { self.dequeue_and_grant() };
    }

    /// Dequeue the oldest live waiter and hand the lock to it (pruning
    /// abandoned nodes on the way), or fully release if every waiter
    /// abandoned.
    ///
    /// # Safety
    ///
    /// Caller must hold both `LOCKED` and `QUEUE_LOCKED`.
    unsafe fn dequeue_and_grant(&self) {
        'scan: loop {
            let mut s = self.state.word.0.load(Ordering::Acquire);
            if QueueWord::head(s).is_null() {
                // Queue drained (every waiter abandoned): full release,
                // clearing both bits. CAS-retry against late enqueues.
                loop {
                    if s & PTR_MASK != 0 {
                        continue 'scan; // a new waiter arrived: grant it
                    }
                    match self.state.word.0.compare_exchange_weak(
                        s,
                        0,
                        Ordering::Release,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return,
                        Err(e) => s = e,
                    }
                }
            }

            // Walk head -> tail (newest -> oldest), pruning abandoned
            // nodes; the grant target is the oldest live node (FIFO).
            let mut prev: *const WaitNode = std::ptr::null();
            let mut cur = QueueWord::head(s);
            let mut live: *const WaitNode = std::ptr::null();
            let mut live_prev: *const WaitNode = std::ptr::null();
            while !cur.is_null() {
                let next = (*cur).next.get();
                if (*cur).is_abandoned() {
                    if prev.is_null() {
                        // Unlink an abandoned head by swinging the state
                        // pointer; a failure means a fresh enqueue won —
                        // restart the walk from the new head.
                        let new_s = next as usize | (s & FLAG_MASK);
                        match self.state.word.0.compare_exchange(
                            s,
                            new_s,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => {
                                drop(Arc::from_raw(cur));
                                s = new_s;
                                cur = next;
                            }
                            Err(_) => continue 'scan,
                        }
                    } else {
                        (*prev).next.set(next);
                        drop(Arc::from_raw(cur));
                        cur = next;
                    }
                } else {
                    live = cur;
                    live_prev = prev;
                    prev = cur;
                    cur = next;
                }
            }
            if live.is_null() {
                continue; // pruned everything; re-check for late arrivals
            }

            // Unlink the target. Everything after it was abandoned and
            // pruned above, so it is the tail.
            debug_assert!((*live).next.get().is_null());
            if live_prev.is_null() {
                // Target is the head (single live node and no fresher
                // enqueues): swing the pointer to empty.
                debug_assert_eq!(QueueWord::head(s), live);
                if self
                    .state
                    .word
                    .0
                    .compare_exchange(s, s & FLAG_MASK, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    continue; // fresh enqueue; rewalk (target stays queued)
                }
            } else {
                (*live_prev).next.set(std::ptr::null());
            }
            let target = Arc::from_raw(live);
            // Drop the maintenance bit before waking; LOCKED stays set —
            // ownership transfers through the grant (direct handoff).
            self.state.word.0.fetch_and(!QUEUE_LOCKED, Ordering::Release);
            // Fault injection: the hook may delay the unpark (sleeping
            // here, before the grant) or drop it (granting quietly; the
            // waiter's rescue poll recovers).
            let drop_unpark = self
                .fault_hook
                .get()
                .is_some_and(|h| h.before_unpark());
            let granted = if drop_unpark {
                target.try_grant_quietly()
            } else {
                target.try_grant()
            };
            if granted {
                self.stats.bump(HANDOFFS);
                return;
            }
            // The target abandoned between the walk and the grant:
            // retake the bit and pick another waiter.
            drop(target);
            loop {
                let s2 = self.state.word.0.load(Ordering::Relaxed);
                debug_assert!(s2 & LOCKED != 0);
                if s2 & QUEUE_LOCKED == 0
                    && self
                        .state
                        .word
                        .0
                        .compare_exchange_weak(
                            s2,
                            s2 | QUEUE_LOCKED,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    break;
                }
                std::hint::spin_loop();
            }
        }
    }

    /// The closely-coupled feedback loop, run inline by the unlocking
    /// thread on sampled unlocks (and by failed `try_lock`s; see
    /// [`AdaptiveMutex::try_lock`]). The gate decision was made at
    /// acquire time by the acquisition fetch-add itself
    /// ([`AdaptiveMutex::charge_acquisition`]), so an unsampled release
    /// performs no counter RMW and reads nothing shared — the waiter
    /// count is only loaded here, once the sample actually fires.
    #[cold]
    fn adapt(&self) {
        self.observe(self.waiters.load(Ordering::Relaxed) as u64);
    }

    /// Feed one sampled observation into the policy (the gate has
    /// already fired). Never contends: if another thread is running the
    /// policy, the sample is skipped. Panic-safe: a policy callback that
    /// panics is caught, counted, and answered with a quarantine — the
    /// lock snaps to pure blocking and adaptation is disabled for an
    /// exponentially growing number of samples before being retried.
    fn observe(&self, waiting: u64) {
        // Fault injection: a stalled monitor feed drops the sample here,
        // after the gate — the policy sees a gap, not a stale value.
        if self.fault_hook.get().is_some_and(|h| h.stall_monitor_sample()) {
            return;
        }
        if self.feedback.busy.swap(true, Ordering::Acquire) {
            return;
        }
        // Quarantined: skip the policy and count down to the retry.
        let ticks = self.feedback.quarantine_ticks.load(Ordering::Relaxed);
        if ticks > 0 {
            self.feedback.quarantine_ticks.store(ticks - 1, Ordering::Relaxed);
            if ticks == 1 {
                // Quarantine ran down: adaptation re-enabled, on
                // probation — the backoff level only resets after
                // PROBATION_DECIDES clean decisions.
                self.feedback.probation.store(PROBATION_DECIDES, Ordering::Relaxed);
                self.stats.bump(HEALS);
            }
            self.feedback.busy.store(false, Ordering::Release);
            return;
        }
        // SAFETY: `feedback.busy` grants exclusive access to the slot.
        let policy = unsafe { &mut *self.feedback.policy.get() };
        // Consume the window's worst contended wait: the next window
        // starts empty, so a single historic stall cannot keep a
        // fairness policy pinned to FIFO forever.
        let max_wait_nanos = self.max_wait.swap(0, Ordering::Relaxed);
        match catch_unwind(AssertUnwindSafe(|| {
            policy.decide(NativeObservation { waiting, max_wait_nanos })
        })) {
            Ok(decision) => {
                if let Some(decision) = decision {
                    self.apply(decision);
                }
                self.note_clean_decide();
            }
            Err(_) => {
                self.stats.bump(POLICY_PANICS);
                self.quarantine();
            }
        }
        self.feedback.busy.store(false, Ordering::Release);
    }

    /// One clean policy decision: pay down the probation period, and
    /// reset the quarantine backoff once it is fully served.
    fn note_clean_decide(&self) {
        if self.feedback.quarantine_level.load(Ordering::Relaxed) == 0 {
            return;
        }
        let left = self.feedback.probation.load(Ordering::Relaxed);
        if left > 1 {
            self.feedback.probation.store(left - 1, Ordering::Relaxed);
        } else {
            self.feedback.quarantine_level.store(0, Ordering::Relaxed);
        }
    }

    /// Degrade to the safe static endpoint: snap the attribute set to
    /// pure blocking (the paper's always-correct configuration) and
    /// disable adaptation for an exponentially backed-off number of
    /// sampled observations, after which it is retried automatically.
    /// Called internally when a policy callback panics, and externally
    /// by a watchdog that has detected a stall.
    pub fn quarantine(&self) {
        self.stats.bump(QUARANTINES);
        let level = self.feedback.quarantine_level.load(Ordering::Relaxed);
        self.feedback
            .quarantine_level
            .store((level + 1).min(QUARANTINE_MAX_SHIFT), Ordering::Relaxed);
        self.feedback
            .quarantine_ticks
            .store(QUARANTINE_BASE_TICKS << level.min(QUARANTINE_MAX_SHIFT), Ordering::Relaxed);
        self.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
        // The spin-park engine is the safe static endpoint too: it is
        // the only engine whose waiters park (and honour the snap to
        // pure blocking above) instead of burning cores.
        self.set_algorithm(LockAlgorithm::SpinPark);
    }

    /// Whether adaptation is currently quarantined (disabled, waiting
    /// out its backoff).
    pub fn is_quarantined(&self) -> bool {
        self.feedback.quarantine_ticks.load(Ordering::Relaxed) > 0
    }

    /// End a quarantine immediately (an operator- or breaker-driven
    /// heal): re-enable adaptation now instead of waiting out the
    /// backoff ticks. The lock keeps whatever waiting policy the
    /// quarantine snapped it to until the policy decides otherwise, and
    /// adaptation restarts *on probation* — the backoff level is only
    /// forgiven after a fixed run of clean decisions, so a lock
    /// healed by an optimistic operator still re-quarantines with a
    /// longer sentence if the underlying fault persists.
    ///
    /// Returns whether a quarantine was actually in force. The tick
    /// swap races benignly with the sampled countdown in the feedback
    /// loop (both only move ticks toward zero; the loser of the race
    /// re-runs a single countdown step).
    pub fn heal(&self) -> bool {
        if self.feedback.quarantine_ticks.swap(0, Ordering::Relaxed) == 0 {
            return false;
        }
        self.feedback.probation.store(PROBATION_DECIDES, Ordering::Relaxed);
        self.stats.bump(HEALS);
        true
    }

    /// Install a fault-injection hook (testing). At most one per mutex,
    /// for its whole lifetime.
    ///
    /// # Panics
    ///
    /// Panics if a hook is already installed.
    pub fn set_fault_hook(&self, hook: Arc<dyn FaultHook>) {
        if self.fault_hook.set(hook).is_err() {
            panic!("a fault hook is already installed on this mutex");
        }
    }

    /// Install a reconfiguration decision, counting it if it changed
    /// anything.
    ///
    /// Every waiting-attribute decision resolves to a *complete*
    /// `{spin, delay, timeout}` set before it is installed (`PureSpin`,
    /// `PureBlocking`, and `SetSpins` go through the same
    /// [`NativeWaitingPolicy`] constructors a caller would use). The
    /// shorthand kinds used to write only the spin attribute, leaving a
    /// previous `SetPolicy`'s delay and — worse — conditional-timeout
    /// attributes live underneath: after a `PureSpin` decision, every
    /// `lock_conditional` was still bounded by a timeout no current
    /// policy had asked for.
    fn apply(&self, decision: NativeDecision) {
        let p = match decision {
            NativeDecision::PureSpin => NativeWaitingPolicy::pure_spin(),
            NativeDecision::PureBlocking => NativeWaitingPolicy::pure_blocking(),
            NativeDecision::SetSpins(n) => NativeWaitingPolicy::combined(n),
            NativeDecision::SetPolicy(p) => p,
            NativeDecision::SetAlgorithm(algo) => {
                // An engine migration; the waiting attributes are left
                // alone (they steer the spin-park engine and the timed
                // zoo waits, whichever engine is current).
                if self.engines.current() != algo {
                    self.set_algorithm(algo);
                    self.stats.bump(RECONFIGURATIONS);
                }
                return;
            }
        };
        // Load-compare-store, not an unconditional swap: a decision that
        // re-affirms the current attribute (the steady-state case for
        // `simple-adapt`, which decides on every sample) must not dirty
        // the read-mostly attribute line that every spinner is reading.
        // `apply` runs under `feedback.busy`, so the only racing writer
        // is an external `set_waiting_policy`, which raced the old swap
        // just the same.
        let mut changed = store_if_changed_u32(&self.attrs.spin_limit, p.spin);
        changed |= store_if_changed_u32(&self.attrs.delay, p.delay);
        changed |= store_if_changed_u64(&self.attrs.timeout_nanos, encode_timeout(p.timeout));
        if changed {
            self.stats.bump(RECONFIGURATIONS);
        }
    }

    /// Externally install a full `{spin, delay, timeout}` attribute set
    /// (the paper's charged `configure` operation, minus the simulated
    /// charge). The feedback loop may override it at its next sample.
    pub fn set_waiting_policy(&self, p: NativeWaitingPolicy) {
        self.attrs.spin_limit.store(p.spin, Ordering::Relaxed);
        self.attrs.delay.store(p.delay, Ordering::Relaxed);
        self.attrs
            .timeout_nanos
            .store(encode_timeout(p.timeout), Ordering::Relaxed);
    }

    /// Current `{spin, delay, timeout}` attribute set.
    pub fn waiting_policy(&self) -> NativeWaitingPolicy {
        let ns = self.attrs.timeout_nanos.load(Ordering::Relaxed);
        NativeWaitingPolicy {
            spin: self.attrs.spin_limit.load(Ordering::Relaxed),
            delay: self.attrs.delay.load(Ordering::Relaxed),
            timeout: (ns != TIMEOUT_NONE).then(|| Duration::from_nanos(ns)),
        }
    }

    /// The engine currently serving acquires and releases.
    pub fn algorithm(&self) -> LockAlgorithm {
        self.engines.current()
    }

    /// The engine a parked switch request will install at the next
    /// release, if any (monitoring; instantly stale).
    pub fn pending_algorithm(&self) -> Option<LockAlgorithm> {
        LockAlgorithm::from_u8(self.engines.meta.pending.load(Ordering::Relaxed))
    }

    /// Request a migration to `algo`. The switch installs via the
    /// quiesce-and-switch protocol — consumed by the next releasing
    /// holder, never blocking the requester — except that a currently
    /// *free* lock is switched immediately (the request momentarily
    /// acquires it to become that holder), so configuring an idle lock
    /// is deterministic.
    pub fn set_algorithm(&self, algo: LockAlgorithm) {
        if self.engines.current() == algo && !self.engines.has_pending() {
            return;
        }
        self.engines.request(algo);
        if self.try_acquire_raw() {
            // We are now the holder: our release consumes the request.
            self.unlock_raw();
        }
    }

    /// Acquire without waiting.
    ///
    /// A *failed* attempt is not invisible to the adaptation policy, the
    /// way a bypassed fast path would be: it is recorded in
    /// [`MutexStats::try_failures`] and fed through the sampling gate as
    /// an observation counting the caller as one would-be waiter on top
    /// of the current waiter count. Try-lock-heavy workloads therefore
    /// still drive the feedback loop, at the same sampling rate as
    /// unlocks; the alternative (counting failures but never sampling
    /// them) would let a 100%-try_lock workload pin the policy at its
    /// initial configuration forever.
    pub fn try_lock(&self) -> Option<AdaptiveMutexGuard<'_, T>> {
        if self.try_acquire_raw() {
            return Some(AdaptiveMutexGuard { mutex: self, adapt: self.charge_acquisition() });
        }
        self.note_try_failure();
        None
    }

    /// Count a failed `try_lock` and pace the failure stream's gate.
    /// The count is a single global cell, *not* a stripe slot: with a
    /// per-stripe count the `count`-th-failure gate fired once per
    /// stripe reaching the period, so the effective sampling cadence
    /// shrank by up to the stripe count as the failing threads spread
    /// out — a period of 64 sampled every ~8th failure at 8 threads.
    #[cold]
    fn note_try_failure(&self) {
        let n = self.try_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if self.gate.fires(n) {
            self.observe(self.waiters.load(Ordering::Relaxed) as u64 + 1);
        }
    }

    /// Run `f` on the protected value as one critical section.
    ///
    /// On every engine but the flat-combining one this is exactly
    /// `f(&mut *self.lock())`. Under [`LockAlgorithm::Combining`] the
    /// operation is *published* instead: a waiter hands its critical
    /// section to whichever thread holds the lock (the combiner), which
    /// executes whole batches under one hold — the queue-of-work
    /// alternative to a queue of waiters. Guard-based `lock()` calls
    /// keep working under the combining engine too; they simply never
    /// combine.
    ///
    /// # Panics
    ///
    /// If `f` panics the mutex is poisoned and the panic resurfaces in
    /// *this* thread (a combiner executing it on our behalf catches it
    /// and keeps running its batch).
    pub fn with_locked<R: Send>(&self, f: impl FnOnce(&mut T) -> R + Send) -> R {
        if self.engines.current() != LockAlgorithm::Combining {
            return f(&mut *self.lock());
        }
        // Combining fast path: the lock is free — take it and run `f`
        // directly, helping any published backlog while we hold it.
        // Publication (slot claim, outcome polling, reclaim: three
        // extra line transfers plus the closure-erasure plumbing) only
        // pays off when a combiner already holds the lock and can
        // batch us; an uncontended `with_locked` costs a guarded
        // `lock()` plus one pending-hint load. A panic in `f` unwinds
        // through the guard and poisons, exactly like the `lock()`
        // path.
        if self.try_acquire_raw() {
            let mut guard = AdaptiveMutexGuard {
                mutex: self,
                adapt: self.charge_acquisition(),
            };
            // SAFETY: we hold the mutex (the guard above releases it).
            let r = f(unsafe { &mut *self.value.get() });
            guard.adapt |= self.drain_combined();
            drop(guard);
            return r;
        }
        self.run_combined(f)
    }

    /// The combining path of [`AdaptiveMutex::with_locked`].
    #[cold]
    fn run_combined<R: Send>(&self, f: impl FnOnce(&mut T) -> R + Send) -> R {
        // An op lands here because the lock was held when it arrived:
        // that is a contended acquisition in every sense that matters
        // to observers (the shipped op waits for a holder exactly like
        // a queued waiter), so it counts in `MutexStats::contended` —
        // otherwise a lock that migrates to combining goes dark to
        // contention-rate monitors (e.g. resharding triggers) at the
        // moment it becomes hottest.
        self.stats.bump(CONTENDED);
        /// A `*mut T` the op closure may carry across threads; the
        /// executor holds the mutex when it dereferences.
        struct ValuePtr<T>(*mut T);
        // SAFETY: see above — access is serialized by the mutex.
        unsafe impl<T> Send for ValuePtr<T> {}
        unsafe impl<T> Sync for ValuePtr<T> {}

        let value = ValuePtr(self.value.get());
        let mut result: Option<R> = None;
        {
            // Capture the Sync wrapper, not the raw pointer field (2021
            // disjoint capture would otherwise pull in the bare `*mut T`).
            let value = &value;
            let mut f = Some(f);
            let mut op = || {
                if let Some(f) = f.take() {
                    // SAFETY: whoever runs the op (us after acquiring,
                    // or a combiner that already holds the lock) owns
                    // the mutex for its duration.
                    result = Some(f(unsafe { &mut *value.0 }));
                }
            };
            let op_dyn: &mut (dyn FnMut() + Send) = &mut op;
            // SAFETY: the pointer's lifetime is erased, but `PublishedOp`
            // guarantees (cancelling or waiting out execution on drop)
            // that it is never used after this scope unwinds.
            let op_ptr: OpPtr = unsafe { std::mem::transmute(op_dyn) };
            match self.engines.combining.publish(op_ptr) {
                Some(published) => {
                    let mut probes: u32 = 0;
                    loop {
                        match published.outcome() {
                            SlotOutcome::Done => {
                                published.finish();
                                break;
                            }
                            SlotOutcome::Panicked => {
                                published.finish();
                                panic!("adaptive mutex combined critical section panicked");
                            }
                            SlotOutcome::Pending => {
                                // Try to become the combiner ourselves
                                // (through the full engine protocol, so
                                // this stays correct across a live
                                // switch away from Combining).
                                if self.try_acquire_raw() {
                                    let mut guard = AdaptiveMutexGuard {
                                        mutex: self,
                                        adapt: self.charge_acquisition(),
                                    };
                                    guard.adapt |= self.drain_combined();
                                    drop(guard);
                                    continue;
                                }
                                probes = probes.wrapping_add(1);
                                if probes.is_multiple_of(SPIN_YIELD_PROBES) {
                                    std::thread::yield_now();
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                }
                None => {
                    // Publication slots full: run inline under the lock
                    // (and help drain the backlog while holding it).
                    let mut guard = self.lock();
                    op();
                    guard.adapt |= self.drain_combined();
                    drop(guard);
                }
            }
        }
        match result {
            Some(r) => r,
            // `Done` without a result would mean the op ran without
            // taking `f` — impossible by construction.
            None => unreachable!("combined op completed without running"),
        }
    }

    /// Execute every published combining op. The caller must hold the
    /// mutex (any engine). Panicked ops poison the mutex — their
    /// publishers re-raise — and executed ops are charged to
    /// [`MutexStats::combined_ops`] in one batch RMW.
    ///
    /// Returns whether the batch crossed a monitor-sample boundary, so
    /// the caller can fold it into its guard's `adapt` flag. Shipped
    /// ops are charged to the acquisition count too: an op the lock
    /// serviced is an op the lock serviced, whichever thread ran it —
    /// and if batches didn't advance the sample clock, a lock that
    /// migrates to combining would starve its own policy of samples at
    /// peak load (reading as idle exactly when hottest, then flapping
    /// engines), and look frozen to the breaker's stall detector.
    fn drain_combined(&self) -> bool {
        // SAFETY: the caller holds the mutex, which is the exclusion
        // `drain` requires.
        let report = unsafe { self.engines.combining.drain() };
        let mut fired = false;
        if report.executed > 0 {
            self.stats.bump_by(COMBINED_OPS, u64::from(report.executed));
            // Plain load + store: we hold the lock, same argument as
            // `charge_acquisition`.
            let n0 = self.state.acquisitions.load(Ordering::Relaxed);
            let n = n0 + u64::from(report.executed);
            self.state.acquisitions.store(n, Ordering::Relaxed);
            fired = (n0 + 1..=n).any(|i| self.gate.fires(i));
        }
        if report.panicked > 0 {
            self.poisoned.store(true, Ordering::Release);
            self.stats.bump_by(POISON_EVENTS, u64::from(report.panicked));
        }
        fired
    }

    /// Current value of the spin attribute.
    pub fn spin_limit(&self) -> u32 {
        self.attrs.spin_limit.load(Ordering::Relaxed)
    }

    /// Current waiter count (monitoring).
    pub fn waiting_now(&self) -> u32 {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Longest single contended wait (enter-to-acquired, ns) observed
    /// since the last monitor sample — the fairness proxy fed to
    /// policies as [`NativeObservation::max_wait_nanos`]. Peeks without
    /// resetting; each sampled observation consumes the window.
    pub fn max_recent_wait_nanos(&self) -> u64 {
        self.max_wait.load(Ordering::Relaxed)
    }

    /// Whether the lock is currently held (monitoring; instantly stale).
    pub fn is_locked(&self) -> bool {
        match self.engines.current() {
            LockAlgorithm::SpinPark => self.state.word.0.load(Ordering::Relaxed) & LOCKED != 0,
            LockAlgorithm::Ticket => self.engines.ticket.is_locked(),
            LockAlgorithm::Queue => self.engines.queue.is_locked(),
            LockAlgorithm::Combining => self.engines.combining.is_locked(),
        }
    }

    /// Whether the spin-park waiter queue is non-empty (monitoring;
    /// instantly stale). Zoo engines keep their waiters in their own
    /// structures — [`AdaptiveMutex::waiting_now`] covers every engine.
    pub fn has_queued_waiters(&self) -> bool {
        self.state.word.0.load(Ordering::Relaxed) & PTR_MASK != 0
    }

    /// Counter snapshot, aggregated lazily across the counter stripes —
    /// `O(stripes)` relaxed loads per field, paid by the monitor, never
    /// by the acquire/release hot path. Exact once writers are
    /// quiescent (e.g. after joining workers); the acquisition count is
    /// exact at all times (it is serialized by the lock itself).
    pub fn stats(&self) -> MutexStats {
        MutexStats {
            acquisitions: self.state.acquisitions.load(Ordering::Relaxed),
            contended: self.stats.sum(CONTENDED),
            parked: self.stats.sum(PARKED),
            handoffs: self.stats.sum(HANDOFFS),
            reconfigurations: self.stats.sum(RECONFIGURATIONS),
            try_failures: self.try_failures.load(Ordering::Relaxed),
            timeouts: self.stats.sum(TIMEOUTS),
            poison_events: self.stats.sum(POISON_EVENTS),
            poison_clears: self.stats.sum(POISON_CLEARS),
            policy_panics: self.stats.sum(POLICY_PANICS),
            quarantines: self.stats.sum(QUARANTINES),
            heals: self.stats.sum(HEALS),
            algorithm_switches: self.stats.sum(SWITCHES),
            combined_ops: self.stats.sum(COMBINED_OPS),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T> Deref for AdaptiveMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the lock.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T> DerefMut for AdaptiveMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus `&mut self` for exclusive reborrow.
        unsafe { &mut *self.mutex.value.get() }
    }
}

impl<T> Drop for AdaptiveMutexGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // The critical section died mid-flight: mark the data suspect
            // and release without running the adaptation policy. Waiters
            // are still woken (no one is stranded by a panic) and the
            // waiter count, queue words, and handoff protocol unwind
            // exactly as on the normal path — only the policy callback is
            // skipped, so the feedback state is bit-identical to a run in
            // which this acquisition's unlock was simply never sampled.
            self.mutex.poisoned.store(true, Ordering::Release);
            self.mutex.stats.bump(POISON_EVENTS);
            self.mutex.unlock_raw();
        } else {
            self.mutex.unlock_raw();
            if self.adapt {
                self.mutex.adapt();
            }
        }
    }
}

impl<T: Send> HealthProbe for AdaptiveMutex<T> {
    fn health(&self) -> LockHealth {
        LockHealth {
            waiting: self.waiting_now(),
            acquisitions: self.state.acquisitions.load(Ordering::Relaxed),
            handoffs: self.stats.sum(HANDOFFS),
            locked: self.is_locked(),
            queued: self.has_queued_waiters(),
            poisoned: self.is_poisoned(),
            quarantined: self.is_quarantined(),
            policy_panics: self.stats.sum(POLICY_PANICS),
        }
    }

    fn quarantine(&self) {
        AdaptiveMutex::quarantine(self);
    }

    fn nudge(&self) -> bool {
        // An acquire/release re-runs the contended release path, which
        // grants (or prunes) any queued waiter whose wakeup was lost.
        // Taken with try_lock so a healthy-but-busy lock is left alone.
        match self.try_lock() {
            Some(guard) => {
                drop(guard);
                true
            }
            None => false,
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AdaptiveMutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AdaptiveMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("AdaptiveMutex");
        d.field("spin_limit", &self.spin_limit());
        d.field("waiting", &self.waiting_now());
        match self.try_lock() {
            Some(g) => d.field("value", &*g).finish(),
            None => d.field("value", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedPolicy;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn guard_gives_exclusive_access() {
        let m = AdaptiveMutex::new(5u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert_eq!(*g, 6);
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = AdaptiveMutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        assert_eq!(m.stats().try_failures, 1);
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn counter_hammering_loses_no_updates() {
        let m = Arc::new(AdaptiveMutex::new(0u64));
        let threads = 8;
        let iters = 2_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), threads * iters);
        let s = m.stats();
        assert_eq!(s.acquisitions, threads * iters + 1);
    }

    #[test]
    fn uncontended_usage_converges_to_pure_spin() {
        let m = AdaptiveMutex::new(());
        for _ in 0..16 {
            drop(m.lock());
        }
        assert_eq!(m.spin_limit(), SPIN_FOREVER, "no waiters -> pure spin");
    }

    #[test]
    fn long_holds_drive_spins_down() {
        // Saturate with long critical sections: waiters accumulate and
        // the policy must cut spinning (possibly to pure blocking).
        let m = Arc::new(AdaptiveMutex::with_policy(
            (),
            Box::new(NativeSimpleAdapt::new(0, 16)),
            1,
        ));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..30 {
                        let g = m.lock();
                        std::thread::sleep(Duration::from_micros(300));
                        drop(g);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.stats();
        assert!(s.reconfigurations > 0, "policy never fired");
        assert!(s.parked > 0, "nobody ever parked despite long holds");
        assert!(s.handoffs > 0, "parked waiters must be served by handoff");
    }

    #[test]
    fn guard_drop_wakes_waiters_promptly() {
        let m = Arc::new(AdaptiveMutex::with_policy(
            0u32,
            Box::new(FixedPolicy(NativeDecision::PureBlocking)),
            1,
        ));
        // Force pure-blocking mode so the waiter definitely parks.
        m.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
        let g = m.lock();
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            *m2.lock() += 1;
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        waiter.join().unwrap();
        assert_eq!(*m.lock(), 1);
        assert!(m.stats().handoffs >= 1);
    }

    #[test]
    fn stale_spin_limit_is_rechecked_mid_spin() {
        // Regression test: a pure-spin waiter used to load `spin_limit`
        // once per acquire round, so a policy downgrade to blocking was
        // never observed by a thread already spinning under SPIN_FOREVER
        // — it burned a core until the lock happened to be released.
        // The spin loop must now observe the downgrade and park.
        let m = Arc::new(AdaptiveMutex::with_policy(
            (),
            // A policy that never decides, so only the external
            // configuration below steers the attributes.
            Box::new(FixedPolicy(NativeDecision::SetSpins(0))),
            u64::MAX,
        ));
        m.set_waiting_policy(NativeWaitingPolicy {
            spin: SPIN_FOREVER,
            delay: 4,
            timeout: None,
        });
        let g = m.lock();
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            drop(m2.lock()); // spins forever under the initial policy
        });
        // Let the waiter reach its spin loop.
        while m.waiting_now() == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        // Downgrade to pure blocking while the waiter is mid-spin: it
        // must re-check the attribute, park, and be handed the lock.
        m.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
        let t0 = std::time::Instant::now();
        while m.stats().parked == 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "waiter never observed the mid-spin policy downgrade"
            );
            std::thread::yield_now();
        }
        drop(g);
        waiter.join().unwrap();
        let s = m.stats();
        assert!(s.parked >= 1, "waiter must have parked after the downgrade");
        assert!(s.handoffs >= 1, "parked waiter must be served by handoff");
    }

    #[test]
    fn lock_timeout_expires_and_recovers() {
        let m = Arc::new(AdaptiveMutex::new(0u32));
        m.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
        let g = m.lock();
        // Times out while held...
        assert!(m.lock_timeout(Duration::from_millis(10)).is_none());
        assert_eq!(m.stats().timeouts, 1);
        drop(g);
        // ...and the abandoned node must not wedge the lock.
        *m.lock_timeout(Duration::from_secs(5)).expect("lock free now") += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn conditional_acquire_honours_the_timeout_attribute() {
        let m = AdaptiveMutex::new(());
        // Unset attribute: conditional acquire is a plain lock.
        assert!(m.lock_conditional().is_some());
        m.set_waiting_policy(
            NativeWaitingPolicy::pure_blocking().with_timeout(Duration::from_millis(5)),
        );
        let g = m.lock();
        assert!(m.lock_conditional().is_none(), "attribute must bound the wait");
        drop(g);
        assert!(m.lock_conditional().is_some());
    }

    #[test]
    fn timed_and_untimed_waiters_interleave_without_loss() {
        // Hammer the lock with a mix of plain and timed-out acquires;
        // abandoned nodes must be pruned and every grant must land.
        let m = Arc::new(AdaptiveMutex::new(0u64));
        m.set_waiting_policy(NativeWaitingPolicy::combined(8));
        let plain = 4u64;
        let iters = 500u64;
        let mut handles: Vec<_> = (0..plain)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        handles.push({
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for _ in 0..iters {
                    if let Some(mut g) = m.lock_timeout(Duration::from_micros(50)) {
                        *g += 1;
                    }
                }
            })
        });
        for h in handles {
            h.join().unwrap();
        }
        let s = m.stats();
        let total = *m.lock();
        assert_eq!(total, s.acquisitions, "every acquisition incremented once");
        assert!(total >= plain * iters, "plain acquires can never be lost");
        assert_eq!(m.waiting_now(), 0, "no stranded waiter");
    }

    #[test]
    fn debug_format_shows_state() {
        let m = AdaptiveMutex::new(7u8);
        let s = format!("{m:?}");
        assert!(s.contains("spin_limit"));
        assert!(s.contains('7'));
    }

    #[test]
    fn panic_while_holding_poisons_but_recovers() {
        let m = Arc::new(AdaptiveMutex::new(0u32));
        let m2 = Arc::clone(&m);
        let dead = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 13;
            panic!("die mid-critical-section");
        });
        assert!(dead.join().is_err());
        assert!(m.is_poisoned());
        assert_eq!(m.stats().poison_events, 1);
        // The infallible API keeps working: poisoning is advisory.
        assert_eq!(*m.lock(), 13);
        assert_eq!(m.waiting_now(), 0, "panic must not leak a waiter slot");
        // Checked API surfaces it, with the guard still usable.
        let e = m.lock_checked().expect_err("must report poison");
        assert_eq!(**e.get_ref(), 13);
        *e.into_inner() = 14;
        assert!(m.clear_poison());
        assert!(!m.is_poisoned());
        assert!(!m.clear_poison(), "second clear is a no-op");
        assert_eq!(m.stats().poison_clears, 1);
        assert_eq!(*m.lock_checked().expect("clean again"), 14);
    }

    #[test]
    fn panicking_holder_wakes_its_waiters() {
        // A holder that dies must still hand the lock to parked waiters
        // — poisoning is advisory, stranding would be a bug.
        let m = Arc::new(AdaptiveMutex::new(0u32));
        m.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
        let m2 = Arc::clone(&m);
        let dead = std::thread::spawn(move || {
            let _g = m2.lock();
            // Hold until a waiter has actually parked, then die.
            while m2.waiting_now() == 0 {
                std::thread::yield_now();
            }
            panic!("holder dies with a waiter parked");
        });
        while !m.is_locked() {
            std::thread::yield_now();
        }
        let m3 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            *m3.lock() += 1;
        });
        assert!(dead.join().is_err());
        waiter.join().unwrap();
        assert!(m.is_poisoned());
        assert_eq!(*m.lock(), 1);
    }

    /// A policy that panics on its first decision and then behaves.
    struct PanicOnce {
        panicked: bool,
    }

    impl AdaptationPolicy<NativeObservation> for PanicOnce {
        type Decision = NativeDecision;

        fn decide(&mut self, _obs: NativeObservation) -> Option<NativeDecision> {
            if !self.panicked {
                self.panicked = true;
                panic!("policy callback dies");
            }
            Some(NativeDecision::PureSpin)
        }

        fn name(&self) -> &'static str {
            "panic-once"
        }
    }

    #[test]
    fn policy_panic_quarantines_then_heals_with_backoff() {
        let m = AdaptiveMutex::with_policy(0u32, Box::new(PanicOnce { panicked: false }), 1);
        // First sampled unlock: the policy panics; the lock must survive,
        // snap to pure blocking, and disable adaptation.
        drop(m.lock());
        let s = m.stats();
        assert_eq!(s.policy_panics, 1);
        assert_eq!(s.quarantines, 1);
        assert!(m.is_quarantined());
        assert_eq!(m.spin_limit(), 0, "quarantine snaps to pure blocking");
        // Serve out the backoff: QUARANTINE_BASE_TICKS sampled
        // observations pass policy-free.
        for _ in 0..QUARANTINE_BASE_TICKS {
            drop(m.lock());
        }
        assert!(!m.is_quarantined());
        assert_eq!(m.stats().heals, 1);
        // Next sample reaches the (now well-behaved) policy again.
        drop(m.lock());
        assert_eq!(m.spin_limit(), SPIN_FOREVER, "healed policy runs again");
        assert_eq!(m.stats().policy_panics, 1, "no further panics");
    }

    #[test]
    fn operator_heal_ends_quarantine_immediately() {
        let m = AdaptiveMutex::new(0u32);
        assert!(!m.heal(), "healing a healthy lock is a no-op");
        m.quarantine();
        assert!(m.is_quarantined());
        assert!(m.heal());
        assert!(!m.is_quarantined(), "heal skips the backoff countdown");
        let s = m.stats();
        assert_eq!(s.quarantines, 1);
        assert_eq!(s.heals, 1);
        assert!(!m.heal(), "double heal reports nothing to do");
        // A healed lock re-quarantines with a longer sentence until the
        // probation period is served (the level was not reset).
        m.quarantine();
        assert!(m.is_quarantined());
        assert_eq!(m.stats().quarantines, 2);
    }

    /// A policy that counts how often it is consulted.
    struct CountingPolicy(Arc<std::sync::atomic::AtomicU64>);

    impl AdaptationPolicy<NativeObservation> for CountingPolicy {
        type Decision = NativeDecision;

        fn decide(&mut self, _obs: NativeObservation) -> Option<NativeDecision> {
            self.0.fetch_add(1, Ordering::Relaxed);
            None
        }

        fn name(&self) -> &'static str {
            "counting"
        }
    }

    #[test]
    fn panicking_unlock_never_reaches_the_policy() {
        // The release path of a panicking holder must not feed the
        // feedback loop: the monitor stream looks exactly as if that
        // acquisition's unlock was never sampled.
        let decides = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let m = Arc::new(AdaptiveMutex::with_policy(
            (),
            Box::new(CountingPolicy(Arc::clone(&decides))),
            1,
        ));
        drop(m.lock());
        drop(m.lock());
        let before = decides.load(Ordering::Relaxed);
        assert_eq!(before, 2);
        let m2 = Arc::clone(&m);
        let dead = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        });
        assert!(dead.join().is_err());
        assert_eq!(
            decides.load(Ordering::Relaxed),
            before,
            "panicking unlock must skip the policy"
        );
        drop(m.lock());
        assert_eq!(decides.load(Ordering::Relaxed), before + 1);
    }

    #[test]
    fn health_probe_snapshots_and_nudges() {
        let m = Arc::new(AdaptiveMutex::new(0u32));
        let probe: Arc<dyn HealthProbe> = Arc::clone(&m) as _;
        let h = probe.health();
        assert!(!h.locked && !h.poisoned && !h.quarantined);
        assert_eq!(h.waiting, 0);
        assert!(probe.nudge(), "free lock accepts the nudge");
        let g = m.lock();
        let h = probe.health();
        assert!(h.locked);
        assert!(!probe.nudge(), "held lock declines the nudge");
        drop(g);
        probe.quarantine();
        assert!(probe.health().quarantined);
        assert_eq!(m.stats().quarantines, 1);
    }

    #[test]
    fn fault_hook_stalls_starve_the_policy() {
        use crate::faults::{FaultPlan, FaultSpec};
        let decides = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let m = AdaptiveMutex::with_policy(
            (),
            Box::new(CountingPolicy(Arc::clone(&decides))),
            1,
        );
        // Stall every sample: the gate ticks but nothing reaches the
        // policy — a dead monitor feed, not a crashed lock.
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(5).with_monitor_stalls(1)));
        m.set_fault_hook(Arc::clone(&plan) as Arc<dyn FaultHook>);
        for _ in 0..10 {
            drop(m.lock());
        }
        assert_eq!(decides.load(Ordering::Relaxed), 0);
        assert_eq!(plan.report().monitor_stalls, 10);
    }

    #[test]
    fn dropped_unparks_do_not_strand_waiters() {
        use crate::faults::{FaultPlan, FaultSpec};
        let m = Arc::new(AdaptiveMutex::new(0u64));
        m.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
        // Drop every unpark: every parked waiter must be rescued by the
        // parker's poll instead of hanging forever.
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(11).with_unpark_drops(1)));
        m.set_fault_hook(Arc::clone(&plan) as Arc<dyn FaultHook>);
        // Park all the waiters behind a held lock, so every subsequent
        // grant flows through the queue (and its dropped unpark).
        let g = m.lock();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    *m.lock() += 1;
                })
            })
            .collect();
        while m.waiting_now() < 4 {
            std::thread::yield_now();
        }
        drop(g);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4);
        assert_eq!(m.waiting_now(), 0);
        assert!(
            plan.report().unparks_dropped > 0,
            "the run must actually have exercised lost wakeups"
        );
    }

    #[test]
    fn zero_timeout_conditional_gives_up_immediately() {
        // Regression test: the timeout attribute used `0` ns as its
        // "no timeout" sentinel, so `Some(Duration::ZERO)` (and any
        // sub-nanosecond timeout) encoded as *unbounded* — a
        // lock_conditional that was asked to give up instantly would
        // instead wait the full hold. It must now fail fast.
        let m = Arc::new(AdaptiveMutex::new(()));
        m.set_waiting_policy(
            NativeWaitingPolicy::pure_blocking().with_timeout(Duration::ZERO),
        );
        assert_eq!(
            m.waiting_policy().timeout,
            Some(Duration::from_nanos(1)),
            "a zero timeout must stay a (minimal) bound, not become the sentinel"
        );
        let g = m.lock();
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            let got = m2.lock_conditional();
            (got.is_some(), t0.elapsed())
        });
        let (acquired, waited) = waiter.join().unwrap();
        assert!(!acquired, "zero timeout must not wait out the holder");
        assert!(
            waited < Duration::from_secs(2),
            "zero timeout blocked for {waited:?} — the sentinel inversion is back"
        );
        drop(g);
        assert!(
            m.lock_conditional().is_some(),
            "a free lock is acquired within any bound"
        );
    }

    #[test]
    fn huge_timeouts_saturate_instead_of_truncating() {
        // `as_nanos() as u64` truncation could turn a ~585-year timeout
        // into a tiny (or zero) one. It must saturate near u64::MAX.
        let m = AdaptiveMutex::new(());
        m.set_waiting_policy(
            NativeWaitingPolicy::pure_blocking()
                .with_timeout(Duration::new(u64::MAX, 999_999_999)),
        );
        let t = m.waiting_policy().timeout.expect("timeout must survive");
        assert!(
            t >= Duration::from_secs(u64::MAX / 1_000_000_000),
            "huge timeout truncated to {t:?}"
        );
        // And the bounded-but-huge wait acquires a free lock instantly.
        assert!(m.lock_conditional().is_some());
    }

    /// A policy that replays a fixed decision script, one per sample.
    struct ScriptedPolicy(std::vec::IntoIter<NativeDecision>);

    impl AdaptationPolicy<NativeObservation> for ScriptedPolicy {
        type Decision = NativeDecision;

        fn decide(&mut self, _obs: NativeObservation) -> Option<NativeDecision> {
            self.0.next()
        }

        fn name(&self) -> &'static str {
            "scripted"
        }
    }

    #[test]
    fn decisions_install_complete_attribute_sets() {
        // Regression test: PureSpin/PureBlocking/SetSpins used to write
        // only the spin attribute, leaving a previous SetPolicy's delay
        // and conditional-timeout attributes live underneath.
        let script = vec![
            NativeDecision::SetPolicy(
                NativeWaitingPolicy::combined(7).with_timeout(Duration::from_millis(5)),
            ),
            NativeDecision::PureSpin,
        ];
        let m = AdaptiveMutex::with_policy((), Box::new(ScriptedPolicy(script.into_iter())), 1);
        drop(m.lock());
        assert!(
            m.waiting_policy().timeout.is_some(),
            "SetPolicy must install its timeout"
        );
        drop(m.lock());
        let p = m.waiting_policy();
        assert_eq!(p.spin, SPIN_FOREVER);
        assert_eq!(
            p.timeout, None,
            "PureSpin left a stale conditional timeout behind"
        );
        assert_eq!(p.delay, NativeWaitingPolicy::pure_spin().delay);
    }

    #[test]
    fn set_algorithm_switches_a_free_lock_immediately() {
        let m = AdaptiveMutex::new(0u32);
        assert_eq!(m.algorithm(), LockAlgorithm::SpinPark);
        for algo in LockAlgorithm::ALL {
            m.set_algorithm(algo);
            assert_eq!(m.algorithm(), algo, "free lock must switch in place");
            assert_eq!(m.pending_algorithm(), None);
            *m.lock() += 1;
            assert!(!m.is_locked());
        }
        assert_eq!(*m.lock(), LockAlgorithm::ALL.len() as u32);
        // SpinPark -> Ticket -> Queue -> Combining and back: 3 real
        // switches plus the final return... ALL starts at SpinPark, so
        // the first request re-affirms and does not count.
        assert_eq!(m.stats().algorithm_switches, LockAlgorithm::ALL.len() as u64 - 1);
    }

    #[test]
    fn pending_switch_installs_at_the_next_release() {
        let m = Arc::new(AdaptiveMutex::new(0u32));
        let g = m.lock();
        m.set_algorithm(LockAlgorithm::Queue);
        assert_eq!(
            m.algorithm(),
            LockAlgorithm::SpinPark,
            "a held lock must not switch under its holder"
        );
        assert_eq!(m.pending_algorithm(), Some(LockAlgorithm::Queue));
        drop(g);
        assert_eq!(m.algorithm(), LockAlgorithm::Queue, "release installs the switch");
        assert_eq!(m.pending_algorithm(), None);
        assert_eq!(m.stats().algorithm_switches, 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn live_switching_under_contention_loses_no_updates() {
        let m = Arc::new(AdaptiveMutex::new(0u64));
        let threads = 8u64;
        let iters = 500u64;
        let stop = Arc::new(AtomicBool::new(false));
        let switcher = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    m.set_algorithm(LockAlgorithm::ALL[k % LockAlgorithm::ALL.len()]);
                    k += 1;
                    std::thread::yield_now();
                }
            })
        };
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for j in 0..iters {
                        if (i + j).is_multiple_of(3) {
                            m.with_locked(|v| *v += 1);
                        } else {
                            *m.lock() += 1;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        switcher.join().unwrap();
        m.set_algorithm(LockAlgorithm::SpinPark);
        assert_eq!(*m.lock(), threads * iters, "a live switch dropped an update");
        assert_eq!(m.waiting_now(), 0, "no stranded waiter after switching");
        assert!(m.stats().algorithm_switches > 0, "the run never actually switched");
    }

    #[test]
    fn with_locked_combines_under_the_combining_engine() {
        let m = Arc::new(AdaptiveMutex::new(0u64));
        m.set_algorithm(LockAlgorithm::Combining);
        // A free lock takes the fast path: the op runs inline under a
        // plain acquisition, no slot traffic.
        m.with_locked(|v| *v += 1);
        assert_eq!(m.stats().combined_ops, 0, "fast path must not publish");
        // A held lock forces publication: park the lock under a guard,
        // wait until every worker's op sits in a slot, then release —
        // whoever acquires first drains the whole batch.
        let workers = 4u64;
        let guard = m.lock();
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    m.with_locked(|v| *v += 1);
                })
            })
            .collect();
        while m.engines.combining.pending_ops() < workers as usize {
            std::thread::yield_now();
        }
        drop(guard);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.with_locked(|v| *v), 1 + workers);
        let s = m.stats();
        assert_eq!(
            s.combined_ops, workers,
            "every published op must be executed by a drain"
        );
        // Concurrent mixed traffic still sums exactly (fast path and
        // slots may interleave freely).
        let threads = 4u64;
        let iters = 500u64;
        let before = m.with_locked(|v| *v);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        m.with_locked(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.with_locked(|v| *v), before + threads * iters);
    }

    #[test]
    fn combined_panic_poisons_and_rethrows_to_the_publisher() {
        let m = AdaptiveMutex::new(0u32);
        m.set_algorithm(LockAlgorithm::Combining);
        let err = catch_unwind(AssertUnwindSafe(|| {
            m.with_locked(|_| panic!("die combined"));
        }))
        .expect_err("the publisher must see its op's panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("panicked") || msg.contains("die combined"), "{msg}");
        assert!(m.is_poisoned(), "a dead combined op must poison the mutex");
        assert!(m.stats().poison_events >= 1);
        // The lock itself stays serviceable.
        m.with_locked(|v| *v += 1);
        assert_eq!(m.with_locked(|v| *v), 1);
    }

    #[test]
    fn timed_acquires_time_out_on_zoo_engines() {
        for algo in [LockAlgorithm::Ticket, LockAlgorithm::Queue, LockAlgorithm::Combining] {
            let m = AdaptiveMutex::new(());
            m.set_algorithm(algo);
            let g = m.lock();
            assert!(
                m.lock_timeout(Duration::from_millis(5)).is_none(),
                "{algo:?}: timed acquire must expire while held"
            );
            assert_eq!(m.stats().timeouts, 1, "{algo:?}");
            drop(g);
            assert!(
                m.lock_timeout(Duration::from_secs(5)).is_some(),
                "{algo:?}: lock must be free after the hold"
            );
            assert_eq!(m.waiting_now(), 0, "{algo:?}: no leaked waiter count");
        }
    }
}
