//! Seeded fault injection for the native lock stack — the OS-thread
//! analogue of `sim::explore`'s schedule noise.
//!
//! The simulator explores failure-adjacent interleavings by perturbing
//! the *schedule*; on real threads the scheduler is out of reach, so a
//! [`FaultPlan`] perturbs the *protocol* instead: it decides, from a
//! fixed seed, which critical sections panic, which unparks are delayed
//! or dropped, which monitor samples are stalled, which workers die
//! mid-task, and when timed waiters should mount an abandonment storm.
//! Harnesses (`tests/native_stress.rs`, `tsp_app::solve_native`) consult
//! the plan at the corresponding protocol points and inject the fault;
//! the [`LockOracle`] invariants and the solver's exactness check are
//! the oracle.
//!
//! Decisions are drawn from per-kind counters hashed with the seed
//! (splitmix64), so the *stream of decisions at each injection site* is
//! a pure function of the seed: two runs with the same plan inject the
//! same faults in the same per-site order, even though the OS scheduler
//! assigns them to different threads. Every injected fault is tallied in
//! a [`FaultReport`] so a test can assert the sweep actually exercised
//! the failure paths it claims to cover.
//!
//! Memory-ordering audit: no `SeqCst` here either. The decision
//! sequencers and injection tallies are all Relaxed `fetch_add`s — each
//! site's stream only needs per-counter atomicity (same-variable
//! modification order), and [`FaultPlan::report`] is read after the
//! harness joins its workers, so no cross-variable ordering is required.
//!
//! [`LockOracle`]: https://docs.rs/adaptive-locks

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The kinds of fault a [`FaultPlan`] can inject. Each kind has its own
/// deterministic decision stream and its own injected-fault tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside a critical section, with the lock held (the holder
    /// dies and the mutex is poisoned).
    CsPanic,
    /// Drop the unpark of a granted waiter (a lost wakeup; recovered by
    /// the parker's rescue poll).
    UnparkDrop,
    /// Delay the unpark of a granted waiter.
    UnparkDelay,
    /// Stall the monitor: silently drop a sampled observation before it
    /// reaches the adaptation policy.
    MonitorStall,
    /// Mount a timed-waiter abandonment storm: a burst of conditional
    /// acquires with near-zero timeouts that all abandon their queue
    /// nodes at once.
    AbandonStorm,
}

impl FaultKind {
    const ALL: [FaultKind; 5] = [
        FaultKind::CsPanic,
        FaultKind::UnparkDrop,
        FaultKind::UnparkDelay,
        FaultKind::MonitorStall,
        FaultKind::AbandonStorm,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::CsPanic => 0,
            FaultKind::UnparkDrop => 1,
            FaultKind::UnparkDelay => 2,
            FaultKind::MonitorStall => 3,
            FaultKind::AbandonStorm => 4,
        }
    }
}

/// Configuration of a [`FaultPlan`]: the seed and, per fault kind, the
/// injection rate as "one in N draws" (`0` disables the kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for every decision stream.
    pub seed: u64,
    /// One in N critical sections panics with the lock held.
    pub cs_panic_one_in: u32,
    /// One in N grants drops its unpark (lost wakeup).
    pub unpark_drop_one_in: u32,
    /// One in N grants delays its unpark by [`FaultSpec::unpark_delay`].
    pub unpark_delay_one_in: u32,
    /// How long a delayed unpark is held back.
    pub unpark_delay: Duration,
    /// One in N sampled monitor observations is stalled (dropped).
    pub monitor_stall_one_in: u32,
    /// One in N storm polls triggers an abandonment burst.
    pub abandon_storm_one_in: u32,
    /// Percentage (0–100) of workers doomed to die mid-task.
    pub kill_workers_percent: u32,
    /// Base number of work items a doomed worker completes before dying
    /// (each doomed worker adds a seeded offset so deaths are staggered).
    pub kill_after_steps: u64,
}

impl Default for FaultSpec {
    /// Everything disabled; a plan with the default spec injects nothing.
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            cs_panic_one_in: 0,
            unpark_drop_one_in: 0,
            unpark_delay_one_in: 0,
            unpark_delay: Duration::from_micros(200),
            monitor_stall_one_in: 0,
            abandon_storm_one_in: 0,
            kill_workers_percent: 0,
            kill_after_steps: 0,
        }
    }
}

impl FaultSpec {
    /// A plan seeded with `seed` and everything else off; chain the
    /// `with_*` builders to enable individual kinds.
    pub fn seeded(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// Panic in one of every `n` critical sections.
    pub fn with_cs_panics(mut self, n: u32) -> FaultSpec {
        self.cs_panic_one_in = n;
        self
    }

    /// Drop one of every `n` unparks.
    pub fn with_unpark_drops(mut self, n: u32) -> FaultSpec {
        self.unpark_drop_one_in = n;
        self
    }

    /// Delay one of every `n` unparks by `by`.
    pub fn with_unpark_delays(mut self, n: u32, by: Duration) -> FaultSpec {
        self.unpark_delay_one_in = n;
        self.unpark_delay = by;
        self
    }

    /// Stall one of every `n` monitor samples.
    pub fn with_monitor_stalls(mut self, n: u32) -> FaultSpec {
        self.monitor_stall_one_in = n;
        self
    }

    /// Trigger an abandonment burst on one of every `n` storm polls.
    pub fn with_abandon_storms(mut self, n: u32) -> FaultSpec {
        self.abandon_storm_one_in = n;
        self
    }

    /// Doom `percent`% of workers to die after roughly `after` steps.
    pub fn with_worker_kills(mut self, percent: u32, after: u64) -> FaultSpec {
        self.kill_workers_percent = percent.min(100);
        self.kill_after_steps = after;
        self
    }
}

/// How many faults of each kind a plan has actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Critical-section panics injected.
    pub cs_panics: u64,
    /// Unparks dropped.
    pub unparks_dropped: u64,
    /// Unparks delayed.
    pub unparks_delayed: u64,
    /// Monitor samples stalled.
    pub monitor_stalls: u64,
    /// Abandonment bursts triggered.
    pub abandon_storms: u64,
}

/// Panic payload used to kill a worker thread outright (as opposed to a
/// transient critical-section panic the worker survives). Raise it with
/// `std::panic::panic_any(WorkerKilled { worker })`; supervisors match
/// on the payload type to tell "this worker is dead" from "this task
/// failed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKilled {
    /// Index of the killed worker.
    pub worker: usize,
}

/// Injection points inside [`AdaptiveMutex`](crate::AdaptiveMutex)
/// itself. The mutex consults its installed hook (if any) at each
/// point; the default implementations inject nothing, and a mutex with
/// no hook installed pays one atomic load per contended release.
pub trait FaultHook: Send + Sync {
    /// Called by a releasing thread immediately before it unparks a
    /// granted waiter. May sleep (a delayed unpark); returning `true`
    /// drops the unpark entirely (a lost wakeup, survivable because the
    /// parker re-checks its grant word on a rescue interval).
    fn before_unpark(&self) -> bool {
        false
    }

    /// Called for each observation that passed the sampling gate;
    /// returning `true` stalls the monitor feed (the sample never
    /// reaches the policy).
    fn stall_monitor_sample(&self) -> bool {
        false
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, thread-safe fault plan. Cheap to share (`Arc<FaultPlan>`);
/// every decision method is lock-free.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Per-kind draw counters (the position in each decision stream).
    seq: [AtomicU64; 5],
    /// Per-kind injected-fault tallies.
    injected: [AtomicU64; 5],
}

impl FaultPlan {
    /// A plan executing `spec`.
    pub fn new(spec: FaultSpec) -> FaultPlan {
        FaultPlan {
            spec,
            seq: Default::default(),
            injected: Default::default(),
        }
    }

    /// The spec this plan executes.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Draw the next decision of `kind`'s stream: whether this
    /// occurrence of the injection point should fault. Deterministic
    /// per-site: the n-th draw of a kind is a pure function of
    /// `(seed, kind, n)`.
    pub fn fires(&self, kind: FaultKind) -> bool {
        let one_in = match kind {
            FaultKind::CsPanic => self.spec.cs_panic_one_in,
            FaultKind::UnparkDrop => self.spec.unpark_drop_one_in,
            FaultKind::UnparkDelay => self.spec.unpark_delay_one_in,
            FaultKind::MonitorStall => self.spec.monitor_stall_one_in,
            FaultKind::AbandonStorm => self.spec.abandon_storm_one_in,
        };
        if one_in == 0 {
            return false;
        }
        let i = kind.index();
        let n = self.seq[i].fetch_add(1, Ordering::Relaxed);
        let draw = splitmix64(self.spec.seed ^ (i as u64).wrapping_mul(0xa076_1d64_78bd_642f) ^ n);
        let fire = draw.is_multiple_of(u64::from(one_in));
        if fire {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Panic (with the caller's locks held, if any) when the plan says
    /// this critical section dies. The payload is a fixed string so
    /// supervisors can tell injected panics from genuine bugs.
    pub fn maybe_panic_in_cs(&self) {
        if self.fires(FaultKind::CsPanic) {
            panic!("fault-injection: critical-section panic");
        }
    }

    /// Whether worker `worker` of `total` is doomed, and if so after how
    /// many completed steps it dies. The doomed set is the first
    /// `total * percent / 100` positions of a seeded permutation of the
    /// workers, so the *count* of killed workers is exact and the choice
    /// is deterministic in the seed alone. Supervisors uphold the exact
    /// count by never letting a doomed worker exit cleanly: it dies at
    /// its kill step, or at search termination if it never got that far.
    pub fn worker_doom(&self, worker: usize, total: usize) -> Option<u64> {
        let pct = u64::from(self.spec.kill_workers_percent.min(100));
        if pct == 0 || total == 0 {
            return None;
        }
        let kill = (total as u64 * pct) / 100;
        // Seeded Fisher–Yates permutation of 0..total; doomed = first `kill`.
        let mut perm: Vec<usize> = (0..total).collect();
        for i in (1..total).rev() {
            let j = (splitmix64(self.spec.seed ^ 0x5ee1_bad5 ^ i as u64) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let rank = perm
            .iter()
            .position(|&w| w == worker)
            .expect("worker index in range by construction");
        if (rank as u64) < kill {
            // Stagger deaths so doomed workers don't all die on the same
            // step.
            let jitter = splitmix64(self.spec.seed ^ 0xdead ^ worker as u64) % 7;
            Some(self.spec.kill_after_steps + jitter)
        } else {
            None
        }
    }

    /// The full doomed set for a crew of `total` workers, in worker-index
    /// order. This is exactly the set of workers for which
    /// [`FaultPlan::worker_doom`] returns `Some`, exposed so tests can
    /// assert against the chosen victims (e.g. pre-load a doomed worker's
    /// local queue) without re-deriving the permutation.
    pub fn doomed_workers(&self, total: usize) -> Vec<usize> {
        (0..total).filter(|&w| self.worker_doom(w, total).is_some()).collect()
    }

    /// Injected-fault tallies so far.
    pub fn report(&self) -> FaultReport {
        let get = |k: FaultKind| self.injected[k.index()].load(Ordering::Relaxed);
        FaultReport {
            cs_panics: get(FaultKind::CsPanic),
            unparks_dropped: get(FaultKind::UnparkDrop),
            unparks_delayed: get(FaultKind::UnparkDelay),
            monitor_stalls: get(FaultKind::MonitorStall),
            abandon_storms: get(FaultKind::AbandonStorm),
        }
    }

    /// Total faults injected, every kind combined.
    pub fn total_injected(&self) -> u64 {
        FaultKind::ALL
            .iter()
            .map(|k| self.injected[k.index()].load(Ordering::Relaxed))
            .sum()
    }
}

impl FaultHook for FaultPlan {
    fn before_unpark(&self) -> bool {
        if self.fires(FaultKind::UnparkDelay) {
            std::thread::sleep(self.spec.unpark_delay);
        }
        self.fires(FaultKind::UnparkDrop)
    }

    fn stall_monitor_sample(&self) -> bool {
        self.fires(FaultKind::MonitorStall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_injects_nothing() {
        let plan = FaultPlan::new(FaultSpec::default());
        for _ in 0..1000 {
            for k in FaultKind::ALL {
                assert!(!plan.fires(k));
            }
        }
        assert_eq!(plan.report(), FaultReport::default());
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn decision_streams_are_deterministic_per_seed() {
        let a = FaultPlan::new(FaultSpec::seeded(42).with_cs_panics(8));
        let b = FaultPlan::new(FaultSpec::seeded(42).with_cs_panics(8));
        let draws_a: Vec<bool> = (0..500).map(|_| a.fires(FaultKind::CsPanic)).collect();
        let draws_b: Vec<bool> = (0..500).map(|_| b.fires(FaultKind::CsPanic)).collect();
        assert_eq!(draws_a, draws_b);
        assert!(a.report().cs_panics > 0, "one-in-8 over 500 draws must fire");

        let c = FaultPlan::new(FaultSpec::seeded(43).with_cs_panics(8));
        let draws_c: Vec<bool> = (0..500).map(|_| c.fires(FaultKind::CsPanic)).collect();
        assert_ne!(draws_a, draws_c, "a different seed must give a different stream");
    }

    #[test]
    fn injection_rate_is_roughly_one_in_n() {
        let plan = FaultPlan::new(FaultSpec::seeded(7).with_cs_panics(64));
        for _ in 0..64_000 {
            plan.fires(FaultKind::CsPanic);
        }
        let hits = plan.report().cs_panics;
        assert!(
            (500..1500).contains(&hits),
            "one-in-64 over 64k draws should hit ~1000 times, got {hits}"
        );
    }

    #[test]
    fn worker_doom_kills_the_exact_fraction() {
        let plan = FaultPlan::new(FaultSpec::seeded(9).with_worker_kills(25, 3));
        for total in [4usize, 8, 16] {
            let doomed: Vec<usize> =
                (0..total).filter(|&w| plan.worker_doom(w, total).is_some()).collect();
            assert_eq!(doomed.len(), total / 4, "25% of {total} workers");
        }
        // Deterministic: the same seed dooms the same workers.
        let again = FaultPlan::new(FaultSpec::seeded(9).with_worker_kills(25, 3));
        for w in 0..8 {
            assert_eq!(plan.worker_doom(w, 8), again.worker_doom(w, 8));
        }
        // A doomed worker dies after at least the configured step count.
        for w in 0..8 {
            if let Some(after) = plan.worker_doom(w, 8) {
                assert!(after >= 3);
            }
        }
        // doomed_workers is exactly the Some-set of worker_doom.
        let expect: Vec<usize> =
            (0..8).filter(|&w| plan.worker_doom(w, 8).is_some()).collect();
        assert_eq!(plan.doomed_workers(8), expect);
        assert_eq!(expect.len(), 2);
    }

    #[test]
    fn cs_panic_panics_with_the_marker_payload() {
        let plan = FaultPlan::new(FaultSpec::seeded(1).with_cs_panics(1));
        let err = std::panic::catch_unwind(|| plan.maybe_panic_in_cs())
            .expect_err("one-in-1 must panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("fault-injection"), "got {msg:?}");
    }

    #[test]
    fn hook_drop_and_delay_streams_are_tallied() {
        let plan = FaultPlan::new(
            FaultSpec::seeded(3)
                .with_unpark_drops(4)
                .with_unpark_delays(4, Duration::from_micros(1))
                .with_monitor_stalls(4),
        );
        let mut dropped = 0;
        for _ in 0..200 {
            if plan.before_unpark() {
                dropped += 1;
            }
            plan.stall_monitor_sample();
        }
        let r = plan.report();
        assert_eq!(r.unparks_dropped, dropped);
        assert!(r.unparks_delayed > 0);
        assert!(r.monitor_stalls > 0);
        assert_eq!(
            plan.total_injected(),
            r.unparks_dropped + r.unparks_delayed + r.monitor_stalls
        );
    }
}
