//! Native adaptation policies (real-thread counterparts of the
//! simulator-side policies, built on the same [`AdaptationPolicy`]
//! trait).

use adaptive_core::AdaptationPolicy;

/// What the native mutex's monitor reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeObservation {
    /// Waiting threads at the sampled unlock.
    pub waiting: u64,
}

/// Reconfiguration decision for the native mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeDecision {
    /// Spin until granted.
    PureSpin,
    /// Park immediately.
    PureBlocking,
    /// Spin this many iterations, then park.
    SetSpins(u32),
}

/// The paper's `simple-adapt`, scaled for spin-loop iterations instead
/// of memory probes.
#[derive(Debug, Clone)]
pub struct NativeSimpleAdapt {
    /// `Waiting-Threshold`.
    pub waiting_threshold: u64,
    /// Spin increment `n`.
    pub n: u32,
    /// Upper clamp.
    pub max_spins: u32,
    spins: i64,
}

impl NativeSimpleAdapt {
    /// Policy with the given threshold and increment.
    pub fn new(waiting_threshold: u64, n: u32) -> NativeSimpleAdapt {
        NativeSimpleAdapt {
            waiting_threshold,
            n,
            max_spins: 1 << 16,
            spins: 64,
        }
    }
}

impl AdaptationPolicy<NativeObservation> for NativeSimpleAdapt {
    type Decision = NativeDecision;

    fn decide(&mut self, obs: NativeObservation) -> Option<NativeDecision> {
        if obs.waiting == 0 {
            return Some(NativeDecision::PureSpin);
        }
        if obs.waiting <= self.waiting_threshold {
            self.spins = (self.spins + i64::from(self.n)).min(i64::from(self.max_spins));
        } else {
            self.spins -= 2 * i64::from(self.n);
        }
        if self.spins <= 0 {
            self.spins = 0;
            Some(NativeDecision::PureBlocking)
        } else {
            Some(NativeDecision::SetSpins(self.spins as u32))
        }
    }

    fn name(&self) -> &'static str {
        "native-simple-adapt"
    }
}

/// A fixed (non-adaptive) policy, for using `AdaptiveMutex` as a plain
/// spin-then-park mutex in comparisons.
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy(
    /// The decision to hold forever.
    pub NativeDecision,
);

impl AdaptationPolicy<NativeObservation> for FixedPolicy {
    type Decision = NativeDecision;

    fn decide(&mut self, _obs: NativeObservation) -> Option<NativeDecision> {
        Some(self.0)
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_waiting_means_pure_spin() {
        let mut p = NativeSimpleAdapt::new(2, 8);
        assert_eq!(
            p.decide(NativeObservation { waiting: 0 }),
            Some(NativeDecision::PureSpin)
        );
    }

    #[test]
    fn light_waiting_grows_spins_heavy_cuts_double() {
        let mut p = NativeSimpleAdapt::new(2, 8);
        assert_eq!(
            p.decide(NativeObservation { waiting: 1 }),
            Some(NativeDecision::SetSpins(72))
        );
        assert_eq!(
            p.decide(NativeObservation { waiting: 9 }),
            Some(NativeDecision::SetSpins(56))
        );
    }

    #[test]
    fn sustained_pressure_reaches_pure_blocking() {
        let mut p = NativeSimpleAdapt::new(0, 16);
        let mut last = None;
        for _ in 0..10 {
            last = p.decide(NativeObservation { waiting: 5 });
        }
        assert_eq!(last, Some(NativeDecision::PureBlocking));
    }

    #[test]
    fn fixed_policy_never_changes() {
        let mut p = FixedPolicy(NativeDecision::SetSpins(7));
        for w in 0..5 {
            assert_eq!(
                p.decide(NativeObservation { waiting: w }),
                Some(NativeDecision::SetSpins(7))
            );
        }
    }
}
