//! Native adaptation policies (real-thread counterparts of the
//! simulator-side policies, built on the same [`AdaptationPolicy`]
//! trait), and the native waiting-policy attribute set.

use std::time::Duration;

use adaptive_core::AdaptationPolicy;

use crate::mutex::SPIN_FOREVER;
use crate::raw::LockAlgorithm;

/// The paper's mutable waiting-policy attributes, on the native side:
/// `{spin, delay, timeout}` (Section 5.1's attribute table, minus
/// `sleep-time` — a real parked thread always sleeps until granted).
///
/// Every field is a run-time-mutable attribute of
/// [`AdaptiveMutex`](crate::AdaptiveMutex), retuned either by the
/// feedback loop ([`NativeDecision::SetPolicy`]) or externally
/// ([`AdaptiveMutex::set_waiting_policy`](crate::AdaptiveMutex::set_waiting_policy)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeWaitingPolicy {
    /// `no-of-spins`: probes made in the spin phase before parking;
    /// [`SPIN_FOREVER`] means "pure spin" (never park), `0` means "pure
    /// blocking" (park immediately).
    pub spin: u32,
    /// `delay-time`: cap on the bounded exponential backoff between
    /// probes, in `spin_loop` hint units (each probe pauses 1, 2, 4, …
    /// up to `delay` hints). `0` disables backoff (tight spinning).
    pub delay: u32,
    /// `timeout`: default bound for a *conditional* acquire
    /// ([`AdaptiveMutex::lock_conditional`](crate::AdaptiveMutex::lock_conditional));
    /// plain `lock()` ignores it, exactly like the simulator's
    /// reconfigurable lock.
    pub timeout: Option<Duration>,
}

impl NativeWaitingPolicy {
    /// Spin until granted, with backoff.
    pub fn pure_spin() -> NativeWaitingPolicy {
        NativeWaitingPolicy {
            spin: SPIN_FOREVER,
            delay: 64,
            timeout: None,
        }
    }

    /// Park immediately.
    pub fn pure_blocking() -> NativeWaitingPolicy {
        NativeWaitingPolicy {
            spin: 0,
            delay: 0,
            timeout: None,
        }
    }

    /// Spin `spins` probes (with backoff), then park — the paper's
    /// combined lock.
    pub fn combined(spins: u32) -> NativeWaitingPolicy {
        NativeWaitingPolicy {
            spin: spins,
            delay: 64,
            timeout: None,
        }
    }

    /// Add a conditional-acquire bound.
    pub fn with_timeout(mut self, timeout: Duration) -> NativeWaitingPolicy {
        self.timeout = Some(timeout);
        self
    }

    /// Compact descriptor for reports.
    pub fn descriptor(&self) -> String {
        let base = if self.spin == SPIN_FOREVER {
            "spin".to_string()
        } else if self.spin == 0 {
            "blocking".to_string()
        } else {
            format!("combined({})", self.spin)
        };
        match self.timeout {
            Some(t) => format!("{base}+timeout({t:?})"),
            None => base,
        }
    }

    /// Parse a control-plane policy descriptor: `spin`, `blocking`, or
    /// `combined:<spins>`, optionally suffixed with `+timeout:<nanos>`
    /// (`spin+timeout:1000000`). The inverse, up to formatting, of
    /// [`NativeWaitingPolicy::descriptor`]; returns `None` on anything
    /// it does not recognise.
    pub fn parse(s: &str) -> Option<NativeWaitingPolicy> {
        let (base, timeout) = match s.split_once("+timeout:") {
            Some((base, nanos)) => {
                let nanos: u64 = nanos.parse().ok()?;
                (base, Some(Duration::from_nanos(nanos)))
            }
            None => (s, None),
        };
        let mut policy = match base {
            "spin" => NativeWaitingPolicy::pure_spin(),
            "blocking" => NativeWaitingPolicy::pure_blocking(),
            _ => {
                let spins: u32 = base.strip_prefix("combined:")?.parse().ok()?;
                NativeWaitingPolicy::combined(spins)
            }
        };
        policy.timeout = timeout;
        Some(policy)
    }
}

impl Default for NativeWaitingPolicy {
    /// The adaptive mutex's initial configuration: a moderate combined
    /// policy (spin a little with backoff, then park).
    fn default() -> Self {
        NativeWaitingPolicy::combined(64)
    }
}

/// A comparable lock configuration for experiments: either a *static*
/// waiting policy (the paper's fixed spin / pure blocking baselines) or
/// the adaptive feedback loop. This is the independent variable of the
/// native perf sweeps, shared by the lock microbenchmarks and the
/// native TSP solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Static combined policy: spin `k` probes (with backoff), then park.
    FixedSpin(u32),
    /// Static pure-blocking policy: park immediately.
    PureBlocking,
    /// The paper's `simple-adapt` feedback loop.
    Adaptive {
        /// `Waiting-Threshold`.
        threshold: u64,
        /// Spin increment `n`.
        n: u32,
    },
    /// Pin the lock to one zoo algorithm with default attributes and no
    /// feedback — the static baselines of the algorithm sweep.
    Algorithm(LockAlgorithm),
    /// Attribute tuning plus live algorithm switching
    /// ([`NativeAlgorithmAdapt`]): queue under sustained heavy
    /// pressure, attribute-tuned spin-park otherwise.
    AlgoAdaptive {
        /// Waiting count that counts as heavy pressure.
        high_water: u64,
        /// Consecutive heavy (or calm) samples before switching.
        patience: u32,
    },
    /// Fairness-aware switching ([`NativeFairnessAdapt`]): FIFO ticket
    /// engine when the per-window worst wait says barging is starving
    /// someone, barging spin-park (with attribute tuning) when service
    /// is even and throughput matters.
    FairAdaptive {
        /// A single contended wait this long (ns) counts as a fairness
        /// collapse signal.
        unfair_wait_nanos: u64,
        /// Consecutive unfair (or calm) samples before switching.
        patience: u32,
    },
}

impl PolicyChoice {
    /// Label used in report rows and BENCH JSON.
    pub fn label(&self) -> String {
        match self {
            PolicyChoice::FixedSpin(k) => format!("fixed-spin({k})"),
            PolicyChoice::PureBlocking => "blocking".into(),
            PolicyChoice::Adaptive { .. } => "simple-adapt".into(),
            PolicyChoice::Algorithm(algo) => algo.label().into(),
            PolicyChoice::AlgoAdaptive { .. } => "algo-adapt".into(),
            PolicyChoice::FairAdaptive { .. } => "fair-adapt".into(),
        }
    }

    /// Build an [`AdaptiveMutex`](crate::AdaptiveMutex) configured for
    /// this choice: static choices install a fixed waiting policy and a
    /// no-op feedback loop; `Adaptive` installs `simple-adapt` sampling
    /// every other unlock.
    pub fn build_mutex<T>(&self, value: T) -> crate::AdaptiveMutex<T> {
        use crate::AdaptiveMutex;
        match *self {
            PolicyChoice::FixedSpin(k) => {
                let m = AdaptiveMutex::with_policy(
                    value,
                    Box::new(FixedPolicy(NativeDecision::SetSpins(k))),
                    u64::MAX,
                );
                m.set_waiting_policy(NativeWaitingPolicy::combined(k));
                m
            }
            PolicyChoice::PureBlocking => {
                let m = AdaptiveMutex::with_policy(
                    value,
                    Box::new(FixedPolicy(NativeDecision::PureBlocking)),
                    u64::MAX,
                );
                m.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
                m
            }
            PolicyChoice::Adaptive { threshold, n } => {
                AdaptiveMutex::with_policy(value, Box::new(NativeSimpleAdapt::new(threshold, n)), 2)
            }
            PolicyChoice::Algorithm(algo) => {
                let m = AdaptiveMutex::with_policy(
                    value,
                    Box::new(FixedPolicy(NativeDecision::SetAlgorithm(algo))),
                    u64::MAX,
                );
                // The lock is unshared, so the switch installs
                // immediately rather than waiting for a release.
                m.set_algorithm(algo);
                m
            }
            PolicyChoice::AlgoAdaptive { high_water, patience } => AdaptiveMutex::with_policy(
                value,
                Box::new(NativeAlgorithmAdapt::new(high_water, patience)),
                2,
            ),
            PolicyChoice::FairAdaptive { unfair_wait_nanos, patience } => {
                AdaptiveMutex::with_policy(
                    value,
                    Box::new(NativeFairnessAdapt::new(unfair_wait_nanos, patience)),
                    2,
                )
            }
        }
    }
}

/// What the native mutex's monitor reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeObservation {
    /// Waiting threads at the sampled unlock (a failed `try_lock`
    /// attempt is sampled as one would-be waiter on top of the parked
    /// and spinning ones).
    pub waiting: u64,
    /// Longest single contended wait (enter-to-acquired, ns) completed
    /// since the previous sample — the cheap online proxy for the
    /// per-thread spread signal. On a fair engine every wait is about
    /// `waiting × holding time`; under barging collapse one victim's
    /// wait stretches far past that, so this maximum diverges from the
    /// mean long before a full per-thread histogram could say so.
    pub max_wait_nanos: u64,
}

impl NativeObservation {
    /// Observation with only the waiter count (no recorded wait in the
    /// window) — the common case for tests and synthetic feeds.
    pub fn of(waiting: u64) -> NativeObservation {
        NativeObservation { waiting, max_wait_nanos: 0 }
    }
}

/// Reconfiguration decision for the native mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeDecision {
    /// Spin until granted.
    PureSpin,
    /// Park immediately.
    PureBlocking,
    /// Spin this many iterations, then park.
    SetSpins(u32),
    /// Install a full `{spin, delay, timeout}` attribute set.
    SetPolicy(NativeWaitingPolicy),
    /// Migrate the lock to a different mutual-exclusion algorithm; the
    /// switch installs at the next release (quiesce-and-switch), so no
    /// waiter is lost mid-migration.
    SetAlgorithm(LockAlgorithm),
}

/// The paper's `simple-adapt`, scaled for spin-loop iterations instead
/// of memory probes.
#[derive(Debug, Clone)]
pub struct NativeSimpleAdapt {
    /// `Waiting-Threshold`.
    pub waiting_threshold: u64,
    /// Spin increment `n`.
    pub n: u32,
    /// Upper clamp.
    pub max_spins: u32,
    spins: i64,
}

impl NativeSimpleAdapt {
    /// Policy with the given threshold and increment.
    pub fn new(waiting_threshold: u64, n: u32) -> NativeSimpleAdapt {
        NativeSimpleAdapt {
            waiting_threshold,
            n,
            max_spins: 1 << 16,
            spins: 64,
        }
    }
}

impl AdaptationPolicy<NativeObservation> for NativeSimpleAdapt {
    type Decision = NativeDecision;

    fn decide(&mut self, obs: NativeObservation) -> Option<NativeDecision> {
        if obs.waiting == 0 {
            return Some(NativeDecision::PureSpin);
        }
        if obs.waiting <= self.waiting_threshold {
            self.spins = (self.spins + i64::from(self.n)).min(i64::from(self.max_spins));
        } else {
            self.spins -= 2 * i64::from(self.n);
        }
        if self.spins <= 0 {
            self.spins = 0;
            Some(NativeDecision::PureBlocking)
        } else {
            Some(NativeDecision::SetSpins(self.spins as u32))
        }
    }

    fn name(&self) -> &'static str {
        "native-simple-adapt"
    }
}

/// Algorithm-level adaptation — the full expression of the paper's
/// configurable object, where the feedback loop swaps the lock's
/// *implementation*, not just its attributes.
///
/// On the spin-park engine the inner [`NativeSimpleAdapt`] tunes the
/// spin count as usual. When the sampled waiting count stays at or
/// above `high_water` for `patience` consecutive samples — sustained
/// FIFO pressure, where spin-park handoff makes every waiter hammer the
/// shared state word — the policy migrates the lock to the CLH queue
/// engine (strict FIFO, local spinning). A streak of `patience` calm
/// samples (waiting at or below `high_water / 2`) migrates it back to
/// attribute-tuned spin-park, which is cheaper when uncontended.
#[derive(Debug, Clone)]
pub struct NativeAlgorithmAdapt {
    /// Attribute tuning used while on the spin-park engine.
    attrs: NativeSimpleAdapt,
    /// Waiting count that counts as heavy pressure.
    pub high_water: u64,
    /// Consecutive heavy (or calm) samples before switching.
    pub patience: u32,
    heavy_streak: u32,
    calm_streak: u32,
    algo: LockAlgorithm,
}

impl NativeAlgorithmAdapt {
    /// Policy that rides `simple-adapt` until `high_water` waiters are
    /// sustained for `patience` samples.
    pub fn new(high_water: u64, patience: u32) -> NativeAlgorithmAdapt {
        NativeAlgorithmAdapt {
            attrs: NativeSimpleAdapt::new(2, 32),
            high_water: high_water.max(1),
            patience: patience.max(1),
            heavy_streak: 0,
            calm_streak: 0,
            algo: LockAlgorithm::SpinPark,
        }
    }

    /// The algorithm this policy believes is installed (it mirrors its
    /// own `SetAlgorithm` decisions; a re-request after an external
    /// switch is harmless — the mutex drops no-op switches).
    pub fn algorithm(&self) -> LockAlgorithm {
        self.algo
    }
}

impl AdaptationPolicy<NativeObservation> for NativeAlgorithmAdapt {
    type Decision = NativeDecision;

    fn decide(&mut self, obs: NativeObservation) -> Option<NativeDecision> {
        if obs.waiting >= self.high_water {
            self.heavy_streak += 1;
            self.calm_streak = 0;
        } else if obs.waiting <= self.high_water / 2 {
            self.calm_streak += 1;
            self.heavy_streak = 0;
        } else {
            self.heavy_streak = 0;
            self.calm_streak = 0;
        }
        match self.algo {
            LockAlgorithm::SpinPark if self.heavy_streak >= self.patience => {
                self.algo = LockAlgorithm::Queue;
                self.heavy_streak = 0;
                Some(NativeDecision::SetAlgorithm(LockAlgorithm::Queue))
            }
            LockAlgorithm::SpinPark => self.attrs.decide(obs),
            _ if self.calm_streak >= self.patience => {
                self.algo = LockAlgorithm::SpinPark;
                self.calm_streak = 0;
                Some(NativeDecision::SetAlgorithm(LockAlgorithm::SpinPark))
            }
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        "native-algo-adapt"
    }
}

/// Fairness-aware adaptation: barging for throughput until the fairness
/// proxy says someone is being starved, FIFO until service is cheap to
/// make even again.
///
/// The signal is [`NativeObservation::max_wait_nanos`] — the worst
/// single contended wait completed in the sample window. On a fair
/// engine that maximum tracks `waiting × holding time`; when a barging
/// spin-park lock starts re-granting to the thread whose line is hot,
/// one victim's wait stretches far beyond it (the per-thread spread
/// collapse `BENCH_native_fairness.json` measures offline, here read
/// from one atomic `fetch_max`). `patience` consecutive unfair samples
/// migrate the lock to the strict-FIFO ticket engine; `patience`
/// consecutive calm samples (worst wait under half the threshold, at
/// most one waiter) migrate it back to attribute-tuned spin-park, which
/// is cheaper when fairness is not at risk. While on spin-park, the
/// inner [`NativeSimpleAdapt`] keeps tuning the spin attribute.
#[derive(Debug, Clone)]
pub struct NativeFairnessAdapt {
    /// Attribute tuning used while on the spin-park engine.
    attrs: NativeSimpleAdapt,
    /// A single contended wait this long (ns) counts as unfair.
    pub unfair_wait_nanos: u64,
    /// Consecutive unfair (or calm) samples before switching.
    pub patience: u32,
    unfair_streak: u32,
    calm_streak: u32,
    algo: LockAlgorithm,
}

impl NativeFairnessAdapt {
    /// Policy that tolerates worst waits up to `unfair_wait_nanos`
    /// before trading barging throughput for FIFO fairness.
    pub fn new(unfair_wait_nanos: u64, patience: u32) -> NativeFairnessAdapt {
        NativeFairnessAdapt {
            attrs: NativeSimpleAdapt::new(2, 32),
            unfair_wait_nanos: unfair_wait_nanos.max(1),
            patience: patience.max(1),
            unfair_streak: 0,
            calm_streak: 0,
            algo: LockAlgorithm::SpinPark,
        }
    }

    /// The algorithm this policy believes is installed (mirrors its own
    /// `SetAlgorithm` decisions, like [`NativeAlgorithmAdapt`]).
    pub fn algorithm(&self) -> LockAlgorithm {
        self.algo
    }
}

impl AdaptationPolicy<NativeObservation> for NativeFairnessAdapt {
    type Decision = NativeDecision;

    fn decide(&mut self, obs: NativeObservation) -> Option<NativeDecision> {
        let unfair = obs.max_wait_nanos >= self.unfair_wait_nanos;
        // Calm needs more than "not unfair": the worst wait must sit
        // comfortably under the threshold *and* pressure must be light,
        // or the switch back would re-trigger immediately (hysteresis,
        // same shape as [`NativeAlgorithmAdapt`]).
        let calm = obs.max_wait_nanos <= self.unfair_wait_nanos / 2 && obs.waiting <= 1;
        match self.algo {
            LockAlgorithm::SpinPark => {
                self.unfair_streak = if unfair { self.unfair_streak + 1 } else { 0 };
                if self.unfair_streak >= self.patience {
                    self.algo = LockAlgorithm::Ticket;
                    self.unfair_streak = 0;
                    self.calm_streak = 0;
                    return Some(NativeDecision::SetAlgorithm(LockAlgorithm::Ticket));
                }
                self.attrs.decide(obs)
            }
            _ => {
                self.calm_streak = if calm { self.calm_streak + 1 } else { 0 };
                if self.calm_streak >= self.patience {
                    self.algo = LockAlgorithm::SpinPark;
                    self.calm_streak = 0;
                    return Some(NativeDecision::SetAlgorithm(LockAlgorithm::SpinPark));
                }
                None
            }
        }
    }

    fn name(&self) -> &'static str {
        "native-fairness-adapt"
    }
}

/// A fixed (non-adaptive) policy, for using `AdaptiveMutex` as a plain
/// spin-then-park mutex in comparisons.
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy(
    /// The decision to hold forever.
    pub NativeDecision,
);

impl AdaptationPolicy<NativeObservation> for FixedPolicy {
    type Decision = NativeDecision;

    fn decide(&mut self, _obs: NativeObservation) -> Option<NativeDecision> {
        Some(self.0)
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_waiting_means_pure_spin() {
        let mut p = NativeSimpleAdapt::new(2, 8);
        assert_eq!(
            p.decide(NativeObservation::of(0)),
            Some(NativeDecision::PureSpin)
        );
    }

    #[test]
    fn light_waiting_grows_spins_heavy_cuts_double() {
        let mut p = NativeSimpleAdapt::new(2, 8);
        assert_eq!(
            p.decide(NativeObservation::of(1)),
            Some(NativeDecision::SetSpins(72))
        );
        assert_eq!(
            p.decide(NativeObservation::of(9)),
            Some(NativeDecision::SetSpins(56))
        );
    }

    #[test]
    fn sustained_pressure_reaches_pure_blocking() {
        let mut p = NativeSimpleAdapt::new(0, 16);
        let mut last = None;
        for _ in 0..10 {
            last = p.decide(NativeObservation::of(5));
        }
        assert_eq!(last, Some(NativeDecision::PureBlocking));
    }

    #[test]
    fn fixed_policy_never_changes() {
        let mut p = FixedPolicy(NativeDecision::SetSpins(7));
        for w in 0..5 {
            assert_eq!(
                p.decide(NativeObservation::of(w)),
                Some(NativeDecision::SetSpins(7))
            );
        }
    }

    #[test]
    fn waiting_policy_parse_round_trips_the_descriptor_shapes() {
        assert_eq!(
            NativeWaitingPolicy::parse("spin"),
            Some(NativeWaitingPolicy::pure_spin())
        );
        assert_eq!(
            NativeWaitingPolicy::parse("blocking"),
            Some(NativeWaitingPolicy::pure_blocking())
        );
        assert_eq!(
            NativeWaitingPolicy::parse("combined:48"),
            Some(NativeWaitingPolicy::combined(48))
        );
        assert_eq!(
            NativeWaitingPolicy::parse("blocking+timeout:250000"),
            Some(NativeWaitingPolicy::pure_blocking().with_timeout(Duration::from_nanos(250_000)))
        );
        assert_eq!(NativeWaitingPolicy::parse("adaptive"), None);
        assert_eq!(NativeWaitingPolicy::parse("combined:lots"), None);
        assert_eq!(NativeWaitingPolicy::parse("spin+timeout:soon"), None);
    }

    #[test]
    fn waiting_policy_constructors_cover_the_attribute_table() {
        assert_eq!(NativeWaitingPolicy::pure_spin().spin, SPIN_FOREVER);
        assert_eq!(NativeWaitingPolicy::pure_blocking().spin, 0);
        assert_eq!(NativeWaitingPolicy::combined(10).spin, 10);
        assert_eq!(NativeWaitingPolicy::default().spin, 64);
        let timed = NativeWaitingPolicy::combined(5).with_timeout(Duration::from_millis(2));
        assert_eq!(timed.timeout, Some(Duration::from_millis(2)));
    }

    #[test]
    fn policy_choices_build_working_mutexes() {
        for choice in [
            PolicyChoice::FixedSpin(16),
            PolicyChoice::PureBlocking,
            PolicyChoice::Adaptive { threshold: 2, n: 32 },
            PolicyChoice::Algorithm(LockAlgorithm::SpinPark),
            PolicyChoice::Algorithm(LockAlgorithm::Ticket),
            PolicyChoice::Algorithm(LockAlgorithm::Queue),
            PolicyChoice::Algorithm(LockAlgorithm::Combining),
            PolicyChoice::AlgoAdaptive { high_water: 4, patience: 4 },
        ] {
            let m = choice.build_mutex(0u32);
            *m.lock() += 1;
            assert_eq!(m.into_inner(), 1, "{}", choice.label());
        }
        assert_eq!(PolicyChoice::FixedSpin(16).label(), "fixed-spin(16)");
        assert_eq!(PolicyChoice::PureBlocking.label(), "blocking");
        assert_eq!(
            PolicyChoice::Adaptive { threshold: 2, n: 32 }.label(),
            "simple-adapt"
        );
        assert_eq!(PolicyChoice::Algorithm(LockAlgorithm::Queue).label(), "clh");
        assert_eq!(
            PolicyChoice::AlgoAdaptive { high_water: 4, patience: 4 }.label(),
            "algo-adapt"
        );
        // Pinning an algorithm installs it immediately on an unshared lock.
        let m = PolicyChoice::Algorithm(LockAlgorithm::Ticket).build_mutex(());
        assert_eq!(m.algorithm(), LockAlgorithm::Ticket);
        // Static choices pin the attribute set.
        let m = PolicyChoice::PureBlocking.build_mutex(());
        assert_eq!(m.waiting_policy(), NativeWaitingPolicy::pure_blocking());
    }

    #[test]
    fn sustained_pressure_switches_to_the_queue_and_calm_switches_back() {
        let mut p = NativeAlgorithmAdapt::new(4, 3);
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
        // Two heavy samples: not yet patient enough; attribute tuning
        // keeps running underneath.
        assert!(p.decide(NativeObservation::of(6)).is_some());
        assert!(p.decide(NativeObservation::of(6)).is_some());
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
        // Third consecutive heavy sample crosses patience.
        assert_eq!(
            p.decide(NativeObservation::of(6)),
            Some(NativeDecision::SetAlgorithm(LockAlgorithm::Queue))
        );
        assert_eq!(p.algorithm(), LockAlgorithm::Queue);
        // On the queue engine the policy stays quiet until calm.
        assert_eq!(p.decide(NativeObservation::of(6)), None);
        assert_eq!(p.decide(NativeObservation::of(1)), None);
        assert_eq!(p.decide(NativeObservation::of(0)), None);
        assert_eq!(
            p.decide(NativeObservation::of(0)),
            Some(NativeDecision::SetAlgorithm(LockAlgorithm::SpinPark))
        );
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
    }

    #[test]
    fn a_heavy_sample_resets_the_calm_streak() {
        let mut p = NativeAlgorithmAdapt::new(4, 2);
        for _ in 0..2 {
            p.decide(NativeObservation::of(8));
        }
        assert_eq!(p.algorithm(), LockAlgorithm::Queue);
        assert_eq!(p.decide(NativeObservation::of(0)), None);
        assert_eq!(p.decide(NativeObservation::of(8)), None);
        assert_eq!(p.decide(NativeObservation::of(0)), None);
        assert_eq!(
            p.decide(NativeObservation::of(0)),
            Some(NativeDecision::SetAlgorithm(LockAlgorithm::SpinPark))
        );
    }

    /// Observation carrying a worst-wait signal.
    fn obs(waiting: u64, max_wait_nanos: u64) -> NativeObservation {
        NativeObservation { waiting, max_wait_nanos }
    }

    #[test]
    fn sustained_unfair_waits_switch_to_ticket_and_calm_switches_back() {
        let mut p = NativeFairnessAdapt::new(1_000_000, 3);
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
        // Two unfair samples: not patient enough yet; attribute tuning
        // keeps running underneath.
        assert!(p.decide(obs(3, 2_000_000)).is_some());
        assert!(p.decide(obs(3, 5_000_000)).is_some());
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
        // Third consecutive unfair sample crosses patience.
        assert_eq!(
            p.decide(obs(3, 1_000_000)),
            Some(NativeDecision::SetAlgorithm(LockAlgorithm::Ticket))
        );
        assert_eq!(p.algorithm(), LockAlgorithm::Ticket);
        // On the FIFO engine: stays put while loaded or while the worst
        // wait is still near the threshold.
        assert_eq!(p.decide(obs(4, 600_000)), None);
        assert_eq!(p.decide(obs(0, 900_000)), None, "wait above half threshold is not calm");
        // Calm = light pressure AND comfortable worst wait, sustained.
        assert_eq!(p.decide(obs(1, 100_000)), None);
        assert_eq!(p.decide(obs(0, 0)), None);
        assert_eq!(
            p.decide(obs(0, 200_000)),
            Some(NativeDecision::SetAlgorithm(LockAlgorithm::SpinPark))
        );
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark);
    }

    #[test]
    fn a_fair_sample_resets_the_unfair_streak() {
        let mut p = NativeFairnessAdapt::new(1_000, 2);
        assert!(p.decide(obs(2, 5_000)).is_some());
        assert!(p.decide(obs(2, 0)).is_some(), "fair sample breaks the streak");
        assert!(p.decide(obs(2, 5_000)).is_some());
        assert_eq!(p.algorithm(), LockAlgorithm::SpinPark, "streak must restart");
        assert_eq!(
            p.decide(obs(2, 5_000)),
            Some(NativeDecision::SetAlgorithm(LockAlgorithm::Ticket))
        );
    }

    #[test]
    fn fair_adaptive_choice_builds_a_working_mutex() {
        let choice = PolicyChoice::FairAdaptive { unfair_wait_nanos: 1_000_000, patience: 4 };
        assert_eq!(choice.label(), "fair-adapt");
        let m = choice.build_mutex(0u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 1);
    }

    #[test]
    fn descriptors_are_informative() {
        assert_eq!(NativeWaitingPolicy::pure_spin().descriptor(), "spin");
        assert_eq!(NativeWaitingPolicy::pure_blocking().descriptor(), "blocking");
        assert_eq!(NativeWaitingPolicy::combined(10).descriptor(), "combined(10)");
        assert!(NativeWaitingPolicy::combined(1)
            .with_timeout(Duration::from_micros(3))
            .descriptor()
            .contains("timeout"));
    }
}
