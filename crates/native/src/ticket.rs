//! Native ticket lock: FIFO spinning on a grant counter.
//!
//! The native analogue of the simulator's `crates/locks/ticket.rs`:
//! an acquirer takes a ticket with one fetch-add on `next`, then spins
//! until `serving` reaches it; release is a plain store (only the
//! holder writes `serving`, so no RMW is needed). In the paper's
//! `n1·R + n2·W` terms an uncontended acquire/release pair costs one
//! RMW plus one read on acquire and one read plus one write on release
//! — but under contention every waiter polls the *same* `serving` line,
//! so each grant broadcasts an invalidation to all of them. That shared
//! polling is what [`crate::ClhLock`] removes; the ticket lock's virtue
//! is strict FIFO order with two words of state.
//!
//! `next` and `serving` live on separate [`CachePadded`] lines so
//! ticket-taking traffic (writes to `next`) does not disturb the line
//! the waiters poll.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::pad::CachePadded;
use crate::raw::RawLock;

/// Spins between yields while polling `serving`.
const POLL_SPINS: u32 = 64;

/// FIFO ticket lock (native, spinning).
///
/// ```
/// use adaptive_native::{RawLock, TicketLock};
///
/// let lock = TicketLock::new();
/// lock.acquire();
/// assert!(!lock.try_acquire());
/// lock.release();
/// assert!(lock.try_acquire());
/// lock.release();
/// ```
#[derive(Debug, Default)]
pub struct TicketLock {
    /// Next ticket to hand out. RMW'd by every acquirer.
    next: CachePadded<AtomicU32>,
    /// Ticket currently allowed into the critical section. Written
    /// only by the holder; polled by every waiter.
    serving: CachePadded<AtomicU32>,
}

impl TicketLock {
    /// A free ticket lock.
    pub const fn new() -> TicketLock {
        TicketLock {
            next: CachePadded::new(AtomicU32::new(0)),
            serving: CachePadded::new(AtomicU32::new(0)),
        }
    }
}

impl RawLock for TicketLock {
    fn acquire(&self) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        while self.serving.load(Ordering::Acquire) != ticket {
            spins += 1;
            if spins.is_multiple_of(POLL_SPINS) {
                // Oversubscribed hosts need the holder scheduled to
                // make progress; burn a quantum instead of a core.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn try_acquire(&self) -> bool {
        let serving = self.serving.load(Ordering::Relaxed);
        // Free iff the next ticket to be handed out is the one being
        // served; claiming it atomically either wins the lock outright
        // or fails because someone else took a ticket first.
        self.next
            .compare_exchange(serving, serving.wrapping_add(1), Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    fn release(&self) {
        // Only the holder writes `serving`: plain load + store, no RMW.
        let now = self.serving.load(Ordering::Relaxed);
        self.serving.store(now.wrapping_add(1), Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        self.next.load(Ordering::Relaxed) != self.serving.load(Ordering::Relaxed)
    }

    fn label(&self) -> &'static str {
        "ticket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn exclusion_holds_under_hammering() {
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let inside = Arc::clone(&inside);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        if i.is_multiple_of(5) && lock.try_acquire() {
                            assert_eq!(inside.fetch_add(1, Ordering::Relaxed), 0);
                            counter.fetch_add(1, Ordering::Relaxed);
                            inside.fetch_sub(1, Ordering::Relaxed);
                            lock.release();
                            continue;
                        }
                        lock.acquire();
                        assert_eq!(inside.fetch_add(1, Ordering::Relaxed), 0);
                        counter.fetch_add(1, Ordering::Relaxed);
                        inside.fetch_sub(1, Ordering::Relaxed);
                        lock.release();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 2_000);
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_acquire_fails_while_held_and_after_wraparound() {
        let lock = TicketLock::new();
        // Push the counters close to wraparound to check the
        // wrapping_add arithmetic.
        lock.next.store(u32::MAX, Ordering::Relaxed);
        lock.serving.store(u32::MAX, Ordering::Relaxed);
        assert!(!lock.is_locked());
        assert!(lock.try_acquire());
        assert!(lock.is_locked());
        assert!(!lock.try_acquire());
        lock.release();
        assert!(!lock.is_locked());
        assert_eq!(lock.serving.load(Ordering::Relaxed), 0);
        assert!(lock.try_acquire());
        lock.release();
    }
}
