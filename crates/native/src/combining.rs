//! Native flat-combining lock: waiters hand their critical section to
//! the current holder.
//!
//! Under heavy contention with tiny critical sections, the dominant
//! cost is not the work but moving the lock word and the protected data
//! between cores — the paper's remote references (`n1·R + n2·W`) in
//! modern clothes. Flat combining inverts the handoff: instead of
//! passing the *lock* to each waiter, a waiter publishes its critical
//! section as a closure in a per-slot mailbox and the current holder
//! (the *combiner*) executes whole batches of them while the data is
//! hot in its cache. One line transfer per published op replaces a
//! lock-word transfer plus a data transfer per op.
//!
//! [`FcLock`] is a test-and-set engine ([`RawLock`]) plus a fixed array
//! of publication slots. Guard-style users (`acquire`/`release`) just
//! use the engine; closure-style users ([`FcLock::run`]) publish and
//! either find their op executed by a combiner or become the combiner
//! themselves by taking the engine. `AdaptiveMutex::with_locked` drives
//! the same slots through the mutex's own acquire protocol when the
//! [`crate::LockAlgorithm::Combining`] engine is selected.
//!
//! A panicking published op is caught by the combiner (which marks the
//! slot so the *publisher* re-raises, keeping the panic in the thread
//! that owns the critical section) — the original payload is replaced
//! by a generic message, which `AdaptiveMutex` pairs with its usual
//! poisoning.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use crate::pad::CachePadded;
use crate::raw::RawLock;

/// Publication mailboxes; publishers beyond this run their op inline
/// under the engine instead.
const FC_SLOTS: usize = 8;

/// Spins between yields while waiting for an outcome or the engine.
const POLL_SPINS: u32 = 64;

/// Slot is empty and claimable.
const SLOT_FREE: u32 = 0;
/// A publisher owns the slot and is writing its op.
const SLOT_CLAIMED: u32 = 1;
/// An op is published and waiting for a combiner.
const SLOT_PENDING: u32 = 2;
/// A combiner is executing the op right now.
const SLOT_EXECUTING: u32 = 3;
/// The op ran to completion; the publisher must reclaim.
const SLOT_DONE: u32 = 4;
/// The op panicked; the publisher must reclaim and re-raise.
const SLOT_PANICKED: u32 = 5;

pub(crate) type OpPtr = *mut (dyn FnMut() + Send);

/// One publication mailbox, on its own line pair so publishers do not
/// false-share with each other.
#[repr(align(128))]
struct Slot {
    state: AtomicU32,
    /// Valid only between `SLOT_PENDING` and reclaim; exclusivity is
    /// enforced by the `state` machine (claim, execute, and reclaim
    /// each begin with an atomic transition that confers ownership).
    op: Cell<Option<OpPtr>>,
}

// SAFETY: `op` is a plain Cell, but the state machine in `state` gives
// every access a unique owner (publisher while CLAIMED/reclaiming,
// combiner while EXECUTING), and the Release/Acquire transitions
// publish the pointed-to closure across threads. The closures
// themselves are required to be `Send` at the publish sites.
unsafe impl Send for Slot {}
unsafe impl Sync for Slot {}

/// What a publisher observes about its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotOutcome {
    /// Not executed yet (pending or mid-execution).
    Pending,
    /// Executed successfully.
    Done,
    /// The op panicked under the combiner.
    Panicked,
}

/// Tally of one combiner pass.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DrainReport {
    /// Ops executed to completion.
    pub(crate) executed: u32,
    /// Ops that panicked (already counted in neither `executed` nor
    /// re-raised here — the publisher re-raises).
    pub(crate) panicked: u32,
}

/// Flat-combining lock: test-and-set engine plus publication slots.
///
/// ```
/// use adaptive_native::{FcLock, RawLock};
///
/// let lock = FcLock::new();
/// lock.acquire();
/// assert!(!lock.try_acquire());
/// lock.release();
/// let n = lock.run(|| 41 + 1);
/// assert_eq!(n, 42);
/// ```
pub struct FcLock {
    /// The engine: plain test-and-set, padded onto its own line.
    engine: CachePadded<AtomicBool>,
    /// Upper-bound hint of slots currently holding a pending op, so an
    /// empty [`FcLock::drain`] is one load of one line instead of a
    /// scan across every slot line. Incremented before a slot turns
    /// `SLOT_PENDING`, decremented by whoever moves it out (combiner or
    /// cancelling publisher). A stale zero only skips a drain — benign,
    /// because publishers poll `try_acquire` and self-serve; it never
    /// strands an op.
    pending_hint: CachePadded<AtomicU32>,
    slots: [Slot; FC_SLOTS],
}

impl FcLock {
    /// A free flat-combining lock.
    pub fn new() -> FcLock {
        FcLock {
            engine: CachePadded::new(AtomicBool::new(false)),
            pending_hint: CachePadded::new(AtomicU32::new(0)),
            slots: std::array::from_fn(|_| Slot {
                state: AtomicU32::new(SLOT_FREE),
                op: Cell::new(None),
            }),
        }
    }

    /// Publish `op` into a free slot. `None` when every slot is taken
    /// (the caller should fall back to running inline under the lock).
    ///
    /// The returned [`PublishedOp`] guarantees — even on unwind — that
    /// the slot is cancelled or completed before the closure behind
    /// `op` can go out of scope, so a stack-borrowed op never dangles.
    pub(crate) fn publish(&self, op: OpPtr) -> Option<PublishedOp<'_>> {
        for (index, slot) in self.slots.iter().enumerate() {
            if slot
                .state
                .compare_exchange(SLOT_FREE, SLOT_CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                slot.op.set(Some(op));
                // Raise the hint before the slot turns PENDING so a
                // drain that sees the op also sees a nonzero hint.
                self.pending_hint.fetch_add(1, Ordering::Relaxed);
                slot.state.store(SLOT_PENDING, Ordering::Release);
                return Some(PublishedOp { fc: self, index, live: true });
            }
        }
        None
    }

    /// Execute every pending op.
    ///
    /// # Safety
    ///
    /// The caller must hold the mutual exclusion this `FcLock` is part
    /// of (the engine itself, or the owning `AdaptiveMutex` through
    /// whatever algorithm is current): ops are critical sections.
    pub(crate) unsafe fn drain(&self) -> DrainReport {
        let mut report = DrainReport::default();
        if self.pending_hint.load(Ordering::Relaxed) == 0 {
            // Nothing published (the common case on the uncontended
            // fast path): one load, no slot-line traffic.
            return report;
        }
        for slot in &self.slots {
            // Cheap peek before the CAS: a sparse scan is relaxed
            // loads, not RMW attempts, on the untouched slots.
            if slot.state.load(Ordering::Relaxed) != SLOT_PENDING {
                continue;
            }
            if slot
                .state
                .compare_exchange(SLOT_PENDING, SLOT_EXECUTING, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            self.pending_hint.fetch_sub(1, Ordering::Relaxed);
            let Some(op) = slot.op.get() else {
                // Unreachable by construction; leave the slot parked in
                // EXECUTING rather than corrupt the protocol.
                debug_assert!(false, "pending slot without an op");
                continue;
            };
            // SAFETY (caller contract + slot state machine): the
            // publisher keeps the closure alive until the slot leaves
            // EXECUTING, and the EXECUTING transition made us its
            // unique executor.
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*op)() }));
            match outcome {
                Ok(()) => {
                    slot.state.store(SLOT_DONE, Ordering::Release);
                    report.executed += 1;
                }
                Err(_) => {
                    slot.state.store(SLOT_PANICKED, Ordering::Release);
                    report.panicked += 1;
                }
            }
        }
        report
    }

    /// Number of slots currently holding a pending op (test-only
    /// observability for forcing the publication path).
    #[cfg(test)]
    pub(crate) fn pending_ops(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state.load(Ordering::Acquire) == SLOT_PENDING)
            .count()
    }

    /// Run `f` under the lock, letting the current holder execute it
    /// when one exists (flat combining); otherwise this thread takes
    /// the engine and combines on behalf of everyone else.
    ///
    /// Standalone use of the zoo lock; `AdaptiveMutex::with_locked`
    /// implements the same protocol against the mutex's full acquire
    /// path.
    pub fn run<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let mut result: Option<R> = None;
        {
            let mut f = Some(f);
            let mut op = || {
                if let Some(f) = f.take() {
                    result = Some(f());
                }
            };
            let op_dyn: &mut (dyn FnMut() + Send) = &mut op;
            // SAFETY: erases the borrow lifetime so the pointer can sit
            // in a slot; `PublishedOp` cancels or completes the slot
            // before `op` leaves this scope, on every path including
            // unwinds.
            let op_ptr: OpPtr = unsafe { std::mem::transmute(op_dyn) };
            match self.publish(op_ptr) {
                Some(published) => {
                    let mut spins = 0u32;
                    loop {
                        match published.outcome() {
                            SlotOutcome::Done => {
                                published.finish();
                                break;
                            }
                            SlotOutcome::Panicked => {
                                published.finish();
                                panic!("flat-combining critical section panicked");
                            }
                            SlotOutcome::Pending => {
                                if self.try_acquire() {
                                    // Become the combiner: our own op is
                                    // among the pending ones.
                                    // SAFETY: we hold the engine.
                                    unsafe { self.drain() };
                                    self.release();
                                } else {
                                    spins += 1;
                                    if spins.is_multiple_of(POLL_SPINS) {
                                        std::thread::yield_now();
                                    } else {
                                        std::hint::spin_loop();
                                    }
                                }
                            }
                        }
                    }
                }
                None => {
                    // Every slot taken: run inline under the engine and
                    // help the publishers while the data is hot.
                    self.acquire();
                    op();
                    // SAFETY: we hold the engine.
                    unsafe { self.drain() };
                    self.release();
                }
            }
        }
        match result {
            Some(r) => r,
            // Every path above either ran the op or panicked.
            None => unreachable!("flat-combining op did not run"),
        }
    }
}

impl Default for FcLock {
    fn default() -> FcLock {
        FcLock::new()
    }
}

impl RawLock for FcLock {
    fn acquire(&self) {
        let mut spins = 0u32;
        loop {
            if self.try_acquire() {
                return;
            }
            while self.engine.load(Ordering::Relaxed) {
                spins += 1;
                if spins.is_multiple_of(POLL_SPINS) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    fn try_acquire(&self) -> bool {
        !self.engine.load(Ordering::Relaxed)
            && self
                .engine
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    fn release(&self) {
        self.engine.store(false, Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        self.engine.load(Ordering::Relaxed)
    }

    fn label(&self) -> &'static str {
        "flat-combining"
    }
}

/// A claim on a publication slot; completes or cancels the slot before
/// the published closure can go out of scope (the drop path covers
/// unwinds through the publisher).
pub(crate) struct PublishedOp<'a> {
    fc: &'a FcLock,
    index: usize,
    live: bool,
}

impl PublishedOp<'_> {
    /// Racy peek at the slot's progress.
    pub(crate) fn outcome(&self) -> SlotOutcome {
        match self.fc.slots[self.index].state.load(Ordering::Acquire) {
            SLOT_DONE => SlotOutcome::Done,
            SLOT_PANICKED => SlotOutcome::Panicked,
            _ => SlotOutcome::Pending,
        }
    }

    /// Release the slot after observing `Done` or `Panicked`.
    pub(crate) fn finish(mut self) {
        let slot = &self.fc.slots[self.index];
        debug_assert!(matches!(
            slot.state.load(Ordering::Relaxed),
            SLOT_DONE | SLOT_PANICKED
        ));
        slot.op.set(None);
        slot.state.store(SLOT_FREE, Ordering::Release);
        self.live = false;
    }
}

impl Drop for PublishedOp<'_> {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        // Unwinding with the op still published: cancel it if no
        // combiner picked it up yet, otherwise wait the combiner out.
        // Either way the closure is dead to the slots when we return.
        let slot = &self.fc.slots[self.index];
        loop {
            match slot.state.compare_exchange(
                SLOT_PENDING,
                SLOT_CLAIMED,
                Ordering::Acquire,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // We took the op back before any combiner did, so
                    // we also take back its hint count.
                    self.fc.pending_hint.fetch_sub(1, Ordering::Relaxed);
                    slot.op.set(None);
                    slot.state.store(SLOT_FREE, Ordering::Release);
                    return;
                }
                Err(SLOT_EXECUTING) => std::hint::spin_loop(),
                Err(SLOT_DONE) | Err(SLOT_PANICKED) => {
                    slot.op.set(None);
                    slot.state.store(SLOT_FREE, Ordering::Release);
                    return;
                }
                Err(other) => {
                    debug_assert!(false, "published slot in state {other}");
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn engine_exclusion_holds_under_hammering() {
        let lock = Arc::new(FcLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let inside = Arc::clone(&inside);
                std::thread::spawn(move || {
                    for _ in 0..2_000u64 {
                        lock.acquire();
                        assert_eq!(inside.fetch_add(1, Ordering::Relaxed), 0);
                        counter.fetch_add(1, Ordering::Relaxed);
                        inside.fetch_sub(1, Ordering::Relaxed);
                        lock.release();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 2_000);
        assert!(!lock.is_locked());
    }

    #[test]
    fn combined_ops_are_exact_and_exclusive() {
        let lock = Arc::new(FcLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let inside = Arc::clone(&inside);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    for i in 0..2_000u64 {
                        // Mix guard-style and combined users: both must
                        // respect the same exclusion.
                        if (t + i as usize).is_multiple_of(3) {
                            lock.acquire();
                            assert_eq!(inside.fetch_add(1, Ordering::Relaxed), 0);
                            counter.fetch_add(1, Ordering::Relaxed);
                            inside.fetch_sub(1, Ordering::Relaxed);
                            lock.release();
                        } else {
                            seen = lock.run(|| {
                                assert_eq!(inside.fetch_add(1, Ordering::Relaxed), 0);
                                let v = counter.fetch_add(1, Ordering::Relaxed) + 1;
                                inside.fetch_sub(1, Ordering::Relaxed);
                                v
                            });
                        }
                    }
                    assert!(seen <= 8 * 2_000);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 2_000);
        assert!(!lock.is_locked());
        // All slots drained back to FREE.
        for slot in &lock.slots {
            assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_FREE);
        }
    }

    #[test]
    fn publisher_rethrows_its_own_panic() {
        let lock = Arc::new(FcLock::new());
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            lock.run(|| panic!("boom"));
        }))
        .expect_err("panic must surface in the publisher");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| err.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(msg.contains("critical section panicked") || msg.contains("boom"), "{msg}");
        // The lock is free and usable afterwards.
        assert!(!lock.is_locked());
        assert_eq!(lock.run(|| 7), 7);
        for slot in &lock.slots {
            assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_FREE);
        }
    }

    #[test]
    fn run_returns_values_from_every_thread() {
        let lock = Arc::new(FcLock::new());
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let v = lock.run(|| total.fetch_add(1, Ordering::Relaxed) + 1);
                        assert!(v >= 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(total.load(Ordering::Relaxed), 6 * 500);
    }
}
