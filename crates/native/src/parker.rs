//! A small thread parker used for handoff grants.
//!
//! Built on `std::thread::park`/`unpark` with an explicit grant flag, in
//! the style of chapter 4 of *Rust Atomics and Locks*: the flag carries
//! the synchronization (Release store on grant, Acquire loads in the
//! park loop), `park` is only the efficient way to wait, and spurious
//! wakeups are filtered by re-checking the flag.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread::Thread;

/// One waiter's handoff slot.
#[derive(Debug)]
pub(crate) struct Waiter {
    thread: Thread,
    granted: AtomicBool,
}

impl Waiter {
    /// A slot for the calling thread.
    pub(crate) fn new() -> Waiter {
        Waiter {
            thread: std::thread::current(),
            granted: AtomicBool::new(false),
        }
    }

    /// Grant the handoff and wake the waiter. Called by the releasing
    /// thread; the Release store pairs with the Acquire load in
    /// [`Waiter::wait`], making everything the releaser did visible to
    /// the granted thread.
    pub(crate) fn grant(&self) {
        self.granted.store(true, Ordering::Release);
        self.thread.unpark();
    }

    /// Whether the grant has landed (Acquire).
    pub(crate) fn is_granted(&self) -> bool {
        self.granted.load(Ordering::Acquire)
    }

    /// Block the calling thread until granted.
    pub(crate) fn wait(&self) {
        while !self.is_granted() {
            std::thread::park();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn grant_before_wait_returns_immediately() {
        let w = Waiter::new();
        w.grant();
        w.wait(); // must not hang
        assert!(w.is_granted());
    }

    #[test]
    fn wait_blocks_until_granted() {
        let w = Arc::new(Waiter::new());
        let w2 = Arc::clone(&w);
        let granter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.grant();
        });
        let t0 = std::time::Instant::now();
        w.wait();
        assert!(w.is_granted());
        assert!(t0.elapsed() >= Duration::from_millis(20), "returned before grant");
        granter.join().unwrap();
    }

    #[test]
    fn stale_unparks_are_filtered() {
        // A spurious unpark (permit from elsewhere) must not end the
        // wait before the grant.
        let w = Arc::new(Waiter::new());
        let w2 = Arc::clone(&w);
        let me = std::thread::current();
        me.unpark(); // leave a stale permit
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.grant();
        });
        w.wait();
        assert!(w.is_granted());
        t.join().unwrap();
    }
}
