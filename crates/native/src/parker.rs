//! The waiter node of the mutex's intrusive waiter list.
//!
//! A [`WaitNode`] is one parked thread's entry in the queue: the intrusive
//! `next` link, a three-state grant/abandon word, and the thread handle to
//! unpark. Built on `std::thread::park`/`park_timeout` in the style of
//! chapter 4 of *Rust Atomics and Locks*: the status word carries the
//! synchronization (Release-flavoured CAS on grant, Acquire loads in the
//! park loop), `park` is only the efficient way to wait, and spurious
//! wakeups are filtered by re-checking the status.
//!
//! The three states make timed waits race-free without any lock around
//! the queue: a releaser *grants* with `WAITING -> GRANTED` and a timed-out
//! waiter *abandons* with `WAITING -> ABANDONED`; the two CASes race on the
//! same word, so exactly one side wins. A waiter that loses the abandon
//! race owns the lock (the handoff already happened); a releaser that
//! loses the grant race moves on to the next waiter.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::thread::Thread;
use std::time::{Duration, Instant};

use crate::pad::CachePadded;

/// Rescue-poll interval for untimed waits: instead of parking
/// unboundedly, a waiter re-checks its grant word at least this often.
/// The status word stays the source of truth, so the poll changes
/// nothing semantically — it converts a *lost wakeup* (an unpark that a
/// fault, a bug, or a crashed releaser never delivered) from a permanent
/// hang into a bounded delay. An idle parked thread wakes ~20×/s, which
/// is noise; a correctly-granted thread never waits out the interval.
const RESCUE_POLL: Duration = Duration::from_millis(50);

/// Status word values.
const WAITING: u32 = 0;
const GRANTED: u32 = 1;
const ABANDONED: u32 = 2;

/// One waiter's entry in the mutex's intrusive queue.
///
/// The handoff word sits on its own [`CachePadded`] line: the parked
/// waiter polls `status` while the releaser walks the queue rewriting
/// `next` links during pruning — without the pad, every link edit would
/// bounce the line the waiter is polling (and, since nodes are heap
/// allocations, two different waiters' words could land on one line).
/// The 128-byte alignment this induces subsumes the old `align(8)`
/// requirement that keeps the low bits of a `WaitNode` pointer free for
/// the mutex's state-word flag bits.
#[derive(Debug)]
pub(crate) struct WaitNode {
    /// Intrusive link toward the *older* end of the queue (the queue is a
    /// prepend-ordered singly-linked list: head = newest, tail = oldest).
    ///
    /// Written by the enqueuing thread before the node is published and
    /// thereafter only by threads holding the queue-lock bit, so a plain
    /// `Cell` suffices (see the `Sync` safety comment).
    pub(crate) next: Cell<*const WaitNode>,
    thread: Thread,
    /// The three-state grant/abandon word (the parker state).
    status: CachePadded<AtomicU32>,
}

// SAFETY: `next` is only written (a) by the owning thread before the node
// is published via the mutex's state-word CAS, which carries Release
// ordering, or (b) under the mutex's QUEUE_LOCKED bit, which at most one
// thread holds at a time. `status` and `thread` are Sync on their own.
unsafe impl Send for WaitNode {}
unsafe impl Sync for WaitNode {}

impl WaitNode {
    /// A node for the calling thread.
    pub(crate) fn new() -> WaitNode {
        WaitNode {
            next: Cell::new(std::ptr::null()),
            thread: std::thread::current(),
            status: CachePadded::new(AtomicU32::new(WAITING)),
        }
    }

    /// Try to grant the handoff and wake the waiter; returns `false` if
    /// the waiter abandoned (timed out) first. Called by the releasing
    /// thread; the Release-flavoured CAS pairs with the Acquire loads in
    /// [`WaitNode::wait`], making everything the releaser did visible to
    /// the granted thread.
    pub(crate) fn try_grant(&self) -> bool {
        if self
            .status
            .compare_exchange(WAITING, GRANTED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.thread.unpark();
            true
        } else {
            false
        }
    }

    /// [`WaitNode::try_grant`] without the unpark: the status word is
    /// still transferred, but the waiter is left to notice at its next
    /// rescue poll. Used by fault injection to simulate a lost wakeup;
    /// the waiter's recovery is what makes that fault survivable.
    pub(crate) fn try_grant_quietly(&self) -> bool {
        self.status
            .compare_exchange(WAITING, GRANTED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Try to abandon the wait (timeout path); returns `false` if a grant
    /// won the race, in which case the caller owns the lock.
    pub(crate) fn try_abandon(&self) -> bool {
        self.status
            .compare_exchange(WAITING, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Whether the grant has landed (Acquire).
    pub(crate) fn is_granted(&self) -> bool {
        self.status.load(Ordering::Acquire) == GRANTED
    }

    /// Whether the node was abandoned by its waiter (Acquire). Used by
    /// queue maintenance to prune dead entries.
    pub(crate) fn is_abandoned(&self) -> bool {
        self.status.load(Ordering::Acquire) == ABANDONED
    }

    /// Block the calling thread until granted, self-healing against
    /// lost wakeups: the park is bounded by [`RESCUE_POLL`], so a grant
    /// whose unpark never arrives is still observed at the next poll.
    pub(crate) fn wait(&self) {
        while !self.is_granted() {
            std::thread::park_timeout(RESCUE_POLL);
        }
    }

    /// Block until granted or `deadline` passes; returns whether the
    /// grant landed. A `false` return does *not* abandon the node — the
    /// caller must race [`WaitNode::try_abandon`] against a late grant.
    pub(crate) fn wait_deadline(&self, deadline: Instant) -> bool {
        loop {
            if self.is_granted() {
                return true;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return self.is_granted();
            };
            std::thread::park_timeout(remaining);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn grant_before_wait_returns_immediately() {
        let w = WaitNode::new();
        assert!(w.try_grant());
        w.wait(); // must not hang
        assert!(w.is_granted());
    }

    #[test]
    fn wait_blocks_until_granted() {
        let w = Arc::new(WaitNode::new());
        let w2 = Arc::clone(&w);
        let granter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            assert!(w2.try_grant());
        });
        let t0 = std::time::Instant::now();
        w.wait();
        assert!(w.is_granted());
        assert!(t0.elapsed() >= Duration::from_millis(20), "returned before grant");
        granter.join().unwrap();
    }

    #[test]
    fn stale_unparks_are_filtered() {
        // A spurious unpark (permit from elsewhere) must not end the
        // wait before the grant.
        let w = Arc::new(WaitNode::new());
        let w2 = Arc::clone(&w);
        let me = std::thread::current();
        me.unpark(); // leave a stale permit
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            assert!(w2.try_grant());
        });
        w.wait();
        assert!(w.is_granted());
        t.join().unwrap();
    }

    #[test]
    fn grant_and_abandon_race_has_one_winner() {
        let w = WaitNode::new();
        assert!(w.try_abandon());
        assert!(!w.try_grant(), "grant must lose to an earlier abandon");
        assert!(w.is_abandoned());

        let w = WaitNode::new();
        assert!(w.try_grant());
        assert!(!w.try_abandon(), "abandon must lose to an earlier grant");
        assert!(w.is_granted());
    }

    #[test]
    fn dropped_unpark_is_rescued_by_the_poll() {
        // A grant whose unpark never arrives (lost wakeup) must still
        // end the wait — within a few rescue-poll intervals, not never.
        let w = Arc::new(WaitNode::new());
        let w2 = Arc::clone(&w);
        let granter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            assert!(w2.try_grant_quietly());
        });
        let t0 = std::time::Instant::now();
        w.wait();
        assert!(w.is_granted());
        assert!(
            t0.elapsed() < RESCUE_POLL * 4,
            "rescue poll took too long: {:?}",
            t0.elapsed()
        );
        granter.join().unwrap();
    }

    #[test]
    fn deadline_wait_times_out_without_grant() {
        let w = WaitNode::new();
        let granted = w.wait_deadline(Instant::now() + Duration::from_millis(10));
        assert!(!granted);
        assert!(w.try_abandon());
    }

    #[test]
    fn deadline_wait_sees_late_grant() {
        let w = Arc::new(WaitNode::new());
        let w2 = Arc::clone(&w);
        let granter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            assert!(w2.try_grant());
        });
        let granted = w.wait_deadline(Instant::now() + Duration::from_secs(5));
        assert!(granted);
        granter.join().unwrap();
    }
}
