//! Liveness watchdog for the native lock stack.
//!
//! The feedback loop `M --v_i--> P --d_c--> Ψ` assumes its own machinery
//! stays healthy; the [`Watchdog`] is the part that checks the
//! assumption. It polls a set of [`HealthProbe`] targets (any
//! [`AdaptiveMutex`](crate::AdaptiveMutex)) and intervenes when a target
//! shows a *stall*: threads are waiting but no acquisition or handoff
//! has completed for a full poll interval. The intervention is the
//! paper's safe endpoint — [`HealthProbe::quarantine`] snaps the waiting
//! policy to pure blocking and disables adaptation (the mutex itself
//! retries re-enabling it with exponential backoff) — plus a
//! [`HealthProbe::nudge`]: an acquire/release that re-runs the contended
//! release path, granting any waiter a lost wakeup left stranded.
//!
//! The watchdog is deliberately poll-driven and synchronous at its core
//! ([`Watchdog::poll`]), so tests can drive it deterministically;
//! [`Watchdog::spawn`] wraps it in a background thread for production
//! use.
//!
//! Memory-ordering audit: no `SeqCst` anywhere in this module. The
//! `stop` flag is a Release store / Acquire load pair (the poller must
//! observe everything published before shutdown), and the probe
//! counters are Relaxed (monotonic telemetry; exactness is only needed
//! after the poller thread is joined).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Point-in-time health snapshot of one lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockHealth {
    /// Threads currently waiting (spinning or parked).
    pub waiting: u32,
    /// Successful acquisitions so far.
    pub acquisitions: u64,
    /// Direct handoffs so far.
    pub handoffs: u64,
    /// Whether the lock is currently held.
    pub locked: bool,
    /// Whether the waiter queue is non-empty.
    pub queued: bool,
    /// Whether the lock is poisoned (a holder panicked).
    pub poisoned: bool,
    /// Whether adaptation is currently quarantined.
    pub quarantined: bool,
    /// Adaptation-policy callbacks that have panicked so far (each one
    /// quarantined the lock from the inside). A count rather than a
    /// flag so a supervisor can detect *repeated* policy panics across
    /// polls and escalate instead of treating them as one incident.
    pub policy_panics: u64,
}

/// A lock the watchdog can examine and heal.
pub trait HealthProbe: Send + Sync {
    /// Snapshot the target's health.
    fn health(&self) -> LockHealth;

    /// Degrade to the safe static endpoint (pure blocking) and disable
    /// adaptation; the target re-enables it later with backoff.
    fn quarantine(&self);

    /// Attempt to un-wedge the target without perturbing its users: if
    /// the lock is free, acquire and release it so the contended release
    /// path re-runs waiter grant/prune. Returns whether the nudge ran.
    fn nudge(&self) -> bool;
}

/// One watchdog intervention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogEvent {
    /// Label of the target that stalled.
    pub target: String,
    /// The health snapshot that triggered the intervention.
    pub health: LockHealth,
    /// Whether the nudge ran (the lock was free to acquire).
    pub nudged: bool,
}

struct WatchTarget {
    label: String,
    probe: Arc<dyn HealthProbe>,
    last: Option<LockHealth>,
    /// Whether the previous poll already intervened on a stall that is
    /// still in force. Interventions are edge-triggered: a target that
    /// stays stalled across many polls is quarantined exactly once, and
    /// only re-quarantined after it makes progress (or drains its
    /// waiters) and then stalls *again*.
    stalled: bool,
}

/// Polls registered locks and quarantines + nudges any that stall.
///
/// Detection rule: a target is stalled when one full poll interval
/// passes with `waiting > 0` and neither `acquisitions` nor `handoffs`
/// advancing — waiters exist but nobody is making progress, which is
/// exactly the stranded-waiter / quiescence violation the oracles check
/// for at test time.
#[derive(Default)]
pub struct Watchdog {
    targets: Vec<WatchTarget>,
    events: Vec<WatchdogEvent>,
}

impl Watchdog {
    /// A watchdog with no targets.
    pub fn new() -> Watchdog {
        Watchdog::default()
    }

    /// Register a lock to watch.
    pub fn watch(&mut self, label: impl Into<String>, probe: Arc<dyn HealthProbe>) {
        self.targets.push(WatchTarget {
            label: label.into(),
            probe,
            last: None,
            stalled: false,
        });
    }

    /// Examine every target once against its previous snapshot,
    /// intervening on stalls. Returns the number of interventions this
    /// poll. Call on an interval (or from a test, interleaved with the
    /// workload) — the first poll only baselines.
    ///
    /// Interventions are gated on a state *change*: a stall fires
    /// quarantine + nudge once when it is first detected, not again on
    /// every subsequent poll while the same stall persists (quarantine
    /// is level-triggered on the mutex side, so re-asserting it every
    /// interval only inflated the backoff and the stats). The gate
    /// re-arms as soon as the target makes progress or drains its
    /// waiters.
    pub fn poll(&mut self) -> usize {
        let mut interventions = 0;
        for t in &mut self.targets {
            let now = t.probe.health();
            if let Some(prev) = t.last {
                let no_progress =
                    now.acquisitions == prev.acquisitions && now.handoffs == prev.handoffs;
                let stalled = now.waiting > 0 && prev.waiting > 0 && no_progress;
                if stalled && !t.stalled {
                    t.probe.quarantine();
                    let nudged = t.probe.nudge();
                    self.events.push(WatchdogEvent {
                        target: t.label.clone(),
                        health: now,
                        nudged,
                    });
                    interventions += 1;
                }
                t.stalled = stalled;
            }
            t.last = Some(now);
        }
        interventions
    }

    /// Every intervention so far.
    pub fn events(&self) -> &[WatchdogEvent] {
        &self.events
    }

    /// Run the watchdog on a background thread, polling every
    /// `interval`. The returned handle stops and joins the thread on
    /// [`WatchdogHandle::stop`] (or on drop), handing the watchdog —
    /// and its event log — back.
    pub fn spawn(self, interval: Duration) -> WatchdogHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let mut dog = self;
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                dog.poll();
                std::thread::park_timeout(interval);
            }
            dog
        });
        WatchdogHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Handle to a background [`Watchdog`] thread.
pub struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<Watchdog>>,
}

impl WatchdogHandle {
    /// Stop the watchdog and recover it (with its event log).
    pub fn stop(mut self) -> Watchdog {
        self.signal();
        self.thread
            .take()
            .expect("thread present until stop or drop")
            .join()
            .unwrap_or_default()
    }

    fn signal(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = &self.thread {
            t.thread().unpark();
        }
    }
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.signal();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A scripted probe: plays back a fixed sequence of health
    /// snapshots and records quarantine/nudge calls.
    struct Scripted {
        frames: Mutex<Vec<LockHealth>>,
        quarantines: std::sync::atomic::AtomicU64,
        nudges: std::sync::atomic::AtomicU64,
    }

    impl Scripted {
        fn new(frames: Vec<LockHealth>) -> Arc<Scripted> {
            Arc::new(Scripted {
                frames: Mutex::new(frames),
                quarantines: std::sync::atomic::AtomicU64::new(0),
                nudges: std::sync::atomic::AtomicU64::new(0),
            })
        }

        fn quarantined(&self) -> bool {
            self.quarantines.load(Ordering::Relaxed) > 0
        }
    }

    impl HealthProbe for Scripted {
        fn health(&self) -> LockHealth {
            let mut f = self.frames.lock().unwrap();
            if f.len() > 1 {
                f.remove(0)
            } else {
                f[0]
            }
        }

        fn quarantine(&self) {
            self.quarantines.fetch_add(1, Ordering::Relaxed);
        }

        fn nudge(&self) -> bool {
            self.nudges.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    fn frame(waiting: u32, acquisitions: u64) -> LockHealth {
        LockHealth {
            waiting,
            acquisitions,
            ..LockHealth::default()
        }
    }

    #[test]
    fn progress_is_never_flagged() {
        // Waiters present but acquisitions advancing: healthy contention.
        let probe = Scripted::new(vec![frame(3, 1), frame(3, 2), frame(3, 5), frame(2, 9)]);
        let mut dog = Watchdog::new();
        dog.watch("busy", Arc::clone(&probe) as Arc<dyn HealthProbe>);
        for _ in 0..4 {
            assert_eq!(dog.poll(), 0);
        }
        assert!(!probe.quarantined());
        assert!(dog.events().is_empty());
    }

    #[test]
    fn idle_lock_is_never_flagged() {
        // No waiters, no progress: just idle, not stalled.
        let probe = Scripted::new(vec![frame(0, 7)]);
        let mut dog = Watchdog::new();
        dog.watch("idle", Arc::clone(&probe) as Arc<dyn HealthProbe>);
        for _ in 0..5 {
            assert_eq!(dog.poll(), 0);
        }
        assert!(!probe.quarantined());
    }

    #[test]
    fn stall_triggers_quarantine_and_nudge() {
        // Two consecutive frames with waiters and frozen counters.
        let probe = Scripted::new(vec![frame(2, 4)]);
        let mut dog = Watchdog::new();
        dog.watch("wedged", Arc::clone(&probe) as Arc<dyn HealthProbe>);
        assert_eq!(dog.poll(), 0, "first poll only baselines");
        assert_eq!(dog.poll(), 1, "second identical frame is a stall");
        assert!(probe.quarantined());
        assert_eq!(probe.nudges.load(Ordering::Relaxed), 1);
        let ev = &dog.events()[0];
        assert_eq!(ev.target, "wedged");
        assert!(ev.nudged);
    }

    #[test]
    fn persistent_stall_is_quarantined_exactly_once() {
        // Regression: a target that stays stalled used to be
        // re-quarantined on *every* poll, inflating the mutex's
        // exponential backoff and drowning the event log. The
        // intervention must fire on the not-stalled → stalled edge only.
        let probe = Scripted::new(vec![frame(2, 4)]);
        let mut dog = Watchdog::new();
        dog.watch("wedged", Arc::clone(&probe) as Arc<dyn HealthProbe>);
        assert_eq!(dog.poll(), 0, "baseline");
        assert_eq!(dog.poll(), 1, "stall detected");
        for _ in 0..10 {
            assert_eq!(dog.poll(), 0, "same stall must not re-fire");
        }
        assert_eq!(probe.quarantines.load(Ordering::Relaxed), 1);
        assert_eq!(probe.nudges.load(Ordering::Relaxed), 1);
        assert_eq!(dog.events().len(), 1);
    }

    #[test]
    fn recovery_rearms_the_stall_gate() {
        // Stall → progress → stall again: two distinct incidents, two
        // interventions.
        let probe = Scripted::new(vec![
            frame(2, 4), // baseline
            frame(2, 4), // stall #1 detected here
            frame(0, 9), // progress, waiters drained: gate re-arms
            frame(3, 9), // waiters back, but prev frame had none
            frame(3, 9), // stall #2 detected here
        ]);
        let mut dog = Watchdog::new();
        dog.watch("flappy", Arc::clone(&probe) as Arc<dyn HealthProbe>);
        assert_eq!(dog.poll(), 0);
        assert_eq!(dog.poll(), 1, "first stall");
        assert_eq!(dog.poll(), 0, "progress frame");
        assert_eq!(dog.poll(), 0, "waiters back, but only one frame so far");
        assert_eq!(dog.poll(), 1, "second stall after recovery");
        assert_eq!(dog.poll(), 0, "second stall persists without re-firing");
        assert_eq!(probe.quarantines.load(Ordering::Relaxed), 2);
        assert_eq!(dog.events().len(), 2);
    }

    #[test]
    fn spawned_watchdog_stops_and_returns_its_log() {
        let probe = Scripted::new(vec![frame(1, 1)]);
        let mut dog = Watchdog::new();
        dog.watch("bg", Arc::clone(&probe) as Arc<dyn HealthProbe>);
        let handle = dog.spawn(Duration::from_millis(1));
        // Let it poll a few times, then stop.
        while !probe.quarantined() {
            std::thread::yield_now();
        }
        let dog = handle.stop();
        assert!(!dog.events().is_empty());
    }
}
