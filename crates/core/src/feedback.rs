//! The adaptation feedback loop `M --v_i--> P --d_c--> Ψ`.
//!
//! The paper distinguishes *closely-coupled* loops (monitoring, policy,
//! and reconfiguration run inline in the object's own methods, as in the
//! customized lock monitor) from *loosely-coupled* loops (observations
//! are queued to an external agent, which may lag and then act on stale
//! state). [`FeedbackLoop`] implements the closely-coupled form;
//! [`LaggedLoop`] wraps it with a bounded observation queue so the lag
//! and overflow phenomena the paper warns about can be measured.

use std::collections::VecDeque;

use crate::policy::AdaptationPolicy;

/// Statistics about a feedback loop's activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoopStats {
    /// Observations fed to the policy.
    pub observations: u64,
    /// Decisions the policy emitted.
    pub decisions: u64,
    /// Observations dropped due to queue overflow (loosely coupled only).
    pub dropped: u64,
}

/// A closely-coupled feedback loop: each observation is handed to the
/// policy immediately and any decision is applied on the spot.
pub struct FeedbackLoop<P> {
    policy: P,
    stats: LoopStats,
}

impl<P> FeedbackLoop<P> {
    /// Wrap a policy.
    pub fn new(policy: P) -> FeedbackLoop<P> {
        FeedbackLoop {
            policy,
            stats: LoopStats::default(),
        }
    }

    /// Feed one observation; if the policy decides, `apply` enacts the
    /// reconfiguration (Ψ). Returns whether a decision was applied.
    pub fn step<Obs>(&mut self, obs: Obs, apply: impl FnOnce(P::Decision)) -> bool
    where
        P: AdaptationPolicy<Obs>,
    {
        self.stats.observations += 1;
        match self.policy.decide(obs) {
            Some(d) => {
                self.stats.decisions += 1;
                apply(d);
                true
            }
            None => false,
        }
    }

    /// Loop statistics so far.
    pub fn stats(&self) -> LoopStats {
        self.stats
    }

    /// Access the wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the wrapped policy (e.g. to retune thresholds).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }
}

/// A loosely-coupled loop: observations are queued (bounded) and the
/// policy runs only when the external agent calls [`LaggedLoop::drain`].
/// When the queue overflows, the *oldest* observations are dropped — the
/// agent then decides on stale state, which is precisely the failure
/// mode the paper's "coupling of the feedback loop" section describes.
pub struct LaggedLoop<P, Obs> {
    inner: FeedbackLoop<P>,
    queue: VecDeque<Obs>,
    capacity: usize,
}

impl<P, Obs> LaggedLoop<P, Obs> {
    /// Wrap a policy with an observation queue of `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(policy: P, capacity: usize) -> LaggedLoop<P, Obs> {
        assert!(capacity > 0, "observation queue needs capacity");
        LaggedLoop {
            inner: FeedbackLoop::new(policy),
            queue: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Deposit an observation from the monitored object's hot path.
    pub fn observe(&mut self, obs: Obs) {
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.inner.stats.dropped += 1;
        }
        self.queue.push_back(obs);
    }

    /// Current queue depth (the loop's lag, in observations).
    pub fn lag(&self) -> usize {
        self.queue.len()
    }

    /// Run the policy over everything queued, applying decisions in
    /// order. Returns how many decisions were applied.
    pub fn drain(&mut self, mut apply: impl FnMut(P::Decision)) -> usize
    where
        P: AdaptationPolicy<Obs>,
    {
        let mut applied = 0;
        while let Some(obs) = self.queue.pop_front() {
            if self.inner.step(obs, &mut apply) {
                applied += 1;
            }
        }
        applied
    }

    /// Loop statistics so far.
    pub fn stats(&self) -> LoopStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FnPolicy;

    #[test]
    fn closely_coupled_applies_inline() {
        let policy = FnPolicy::new("gt3", |obs: u32| (obs > 3).then_some(obs * 2));
        let mut fb = FeedbackLoop::new(policy);
        let mut applied = Vec::new();
        assert!(!fb.step(1, |d| applied.push(d)));
        assert!(fb.step(5, |d| applied.push(d)));
        assert_eq!(applied, vec![10]);
        let s = fb.stats();
        assert_eq!(s.observations, 2);
        assert_eq!(s.decisions, 1);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn lagged_loop_defers_until_drain() {
        let policy = FnPolicy::new("all", |obs: u32| Some(obs));
        let mut fb = LaggedLoop::new(policy, 8);
        fb.observe(1);
        fb.observe(2);
        assert_eq!(fb.lag(), 2);
        let mut got = Vec::new();
        assert_eq!(fb.drain(|d| got.push(d)), 2);
        assert_eq!(got, vec![1, 2]);
        assert_eq!(fb.lag(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let policy = FnPolicy::new("all", |obs: u32| Some(obs));
        let mut fb = LaggedLoop::new(policy, 2);
        fb.observe(1);
        fb.observe(2);
        fb.observe(3); // drops 1
        let mut got = Vec::new();
        fb.drain(|d| got.push(d));
        assert_eq!(got, vec![2, 3], "oldest observation must be the one dropped");
        assert_eq!(fb.stats().dropped, 1);
    }

    #[test]
    fn policy_mut_allows_retuning() {
        struct Thresh {
            limit: u32,
        }
        impl AdaptationPolicy<u32> for Thresh {
            type Decision = ();
            fn decide(&mut self, obs: u32) -> Option<()> {
                (obs > self.limit).then_some(())
            }
        }
        let mut fb = FeedbackLoop::new(Thresh { limit: 10 });
        assert!(!fb.step(5, |_| {}));
        fb.policy_mut().limit = 1;
        assert!(fb.step(5, |_| {}));
        assert_eq!(fb.policy().limit, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = LaggedLoop::<FnPolicy<fn(u32) -> Option<u32>>, u32>::new(
            FnPolicy::new("x", (|_| None) as fn(u32) -> Option<u32>),
            0,
        );
    }
}
