//! The paper's operation cost model.
//!
//! Section 3.1 expresses the cost of every state-transition (Υ),
//! reconfiguration (Ψ), and initialization (I) operation as
//! `t = n1 R n2 W` — a count of memory reads and writes. [`OpCost`]
//! carries that pair; [`CostLog`] accumulates per-operation records so
//! that the cost of a *complex* reconfiguration ("obtained by adding
//! costs of the individual operations") falls out by summation.

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Cost of one primitive operation in memory reads and writes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// `n1`: number of memory reads.
    pub reads: u64,
    /// `n2`: number of memory writes.
    pub writes: u64,
}

impl OpCost {
    /// Zero cost.
    pub const ZERO: OpCost = OpCost { reads: 0, writes: 0 };

    /// `n1 R n2 W`.
    pub const fn new(reads: u64, writes: u64) -> OpCost {
        OpCost { reads, writes }
    }

    /// A pure-read cost.
    pub const fn reads(n: u64) -> OpCost {
        OpCost { reads: n, writes: 0 }
    }

    /// A pure-write cost.
    pub const fn writes(n: u64) -> OpCost {
        OpCost { reads: 0, writes: n }
    }

    /// Total memory operations.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl Add for OpCost {
    type Output = OpCost;
    fn add(self, r: OpCost) -> OpCost {
        OpCost {
            reads: self.reads + r.reads,
            writes: self.writes + r.writes,
        }
    }
}

impl AddAssign for OpCost {
    fn add_assign(&mut self, r: OpCost) {
        self.reads += r.reads;
        self.writes += r.writes;
    }
}

impl std::fmt::Display for OpCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}R {}W", self.reads, self.writes)
    }
}

/// Which of the paper's three configurable-method categories an operation
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Υ — a state-transition operation on the internal state `IV`.
    StateTransition,
    /// Ψ — a reconfiguration operation on the configuration `C = Γ × Φ`.
    Reconfiguration,
    /// I — an initialization operation.
    Initialization,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::StateTransition => "Υ",
            OpKind::Reconfiguration => "Ψ",
            OpKind::Initialization => "I",
        };
        f.write_str(s)
    }
}

/// One logged operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostRecord {
    /// Operation name (e.g. `configure(waiting-policy)`).
    pub op: String,
    /// Operation category.
    pub kind: OpKind,
    /// Its `n1 R n2 W` cost.
    pub cost: OpCost,
}

/// Accumulating log of operation costs.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct CostLog {
    records: Vec<CostRecord>,
}

impl CostLog {
    /// An empty log.
    pub fn new() -> CostLog {
        CostLog::default()
    }

    /// Append a record.
    pub fn record(&mut self, op: impl Into<String>, kind: OpKind, cost: OpCost) {
        self.records.push(CostRecord {
            op: op.into(),
            kind,
            cost,
        });
    }

    /// All records, in order.
    pub fn records(&self) -> &[CostRecord] {
        &self.records
    }

    /// Sum of all recorded costs (the paper's rule for complex
    /// reconfigurations).
    pub fn total(&self) -> OpCost {
        self.records.iter().fold(OpCost::ZERO, |a, r| a + r.cost)
    }

    /// Sum of costs of one category.
    pub fn total_of(&self, kind: OpKind) -> OpCost {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .fold(OpCost::ZERO, |a, r| a + r.cost)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_algebra() {
        let a = OpCost::new(1, 2);
        let b = OpCost::reads(3) + OpCost::writes(1);
        assert_eq!(a + b, OpCost::new(4, 3));
        assert_eq!((a + b).total(), 7);
        assert_eq!(format!("{}", a), "1R 2W");
    }

    #[test]
    fn log_sums_by_category() {
        let mut log = CostLog::new();
        log.record("init", OpKind::Initialization, OpCost::new(0, 4));
        log.record("configure(waiting)", OpKind::Reconfiguration, OpCost::new(1, 1));
        log.record("configure(scheduler)", OpKind::Reconfiguration, OpCost::new(0, 5));
        log.record("lock", OpKind::StateTransition, OpCost::new(2, 1));
        assert_eq!(log.total(), OpCost::new(3, 11));
        assert_eq!(log.total_of(OpKind::Reconfiguration), OpCost::new(1, 6));
        assert_eq!(log.total_of(OpKind::Initialization), OpCost::new(0, 4));
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
    }

    #[test]
    fn opkind_display_is_greek() {
        assert_eq!(format!("{}", OpKind::StateTransition), "Υ");
        assert_eq!(format!("{}", OpKind::Reconfiguration), "Ψ");
        assert_eq!(format!("{}", OpKind::Initialization), "I");
    }
}
