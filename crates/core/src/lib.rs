//! # adaptive-core
//!
//! The adaptive-object model of *"Improving Performance by Use of
//! Adaptive Objects"* (Mukherjee & Schwan, 1993), as a reusable Rust
//! library.
//!
//! The paper classifies objects into three kinds:
//!
//! * **non-configurable** — plain encapsulated state and methods;
//! * **reconfigurable** — the implementation of methods can be swapped at
//!   run time behind an immutable interface, steered by *mutable
//!   attributes* ([`AttrSet`]) with explicit mutability and ownership
//!   rules;
//! * **adaptive** — a reconfigurable object plus a built-in *monitor*
//!   ([`Sensor`], [`SamplingGate`]) and a user-provided *adaptation
//!   policy* ([`AdaptationPolicy`]), wired into a feedback loop
//!   ([`FeedbackLoop`]): `M --v_i--> P --d_c--> Ψ`.
//!
//! Costs follow the paper's `t = n1 R n2 W` formalism ([`OpCost`]), and
//! every reconfiguration can be audited through a [`TransitionLog`].
//!
//! This crate is platform-agnostic: the `adaptive-locks` crate
//! instantiates the model for multiprocessor locks on the Butterfly
//! simulator, and `adaptive-native` instantiates it for real threads.
//!
//! ```
//! use adaptive_core::{AdaptationPolicy, FeedbackLoop, SamplingGate};
//!
//! // The paper's simple-adapt policy shape: observe waiting threads,
//! // decide a new spin count.
//! struct SimpleAdapt { spins: i64 }
//! impl AdaptationPolicy<u32> for SimpleAdapt {
//!     type Decision = i64;
//!     fn decide(&mut self, waiting: u32) -> Option<i64> {
//!         self.spins = if waiting == 0 { 100 } else { self.spins - 10 };
//!         Some(self.spins.max(0))
//!     }
//! }
//!
//! let gate = SamplingGate::every(2); // sample every other unlock
//! let mut feedback = FeedbackLoop::new(SimpleAdapt { spins: 50 });
//! let mut spin_attr = 50i64;
//! for unlock in 0..4u32 {
//!     if gate.tick() {
//!         feedback.step(unlock % 2, |new_spins| spin_attr = new_spins);
//!     }
//! }
//! assert_eq!(feedback.stats().observations, 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod attrs;
mod config_space;
mod cost;
mod feedback;
mod monitor;
mod policy;

pub use attrs::{AttrError, AttrName, AttrSet, AttrValue, OwnerId};
pub use config_space::{Configuration, MethodSetId, Transition, TransitionLog};
pub use cost::{CostLog, CostRecord, OpCost, OpKind};
pub use feedback::{FeedbackLoop, LaggedLoop, LoopStats};
pub use monitor::{FnSensor, MonitorStats, SamplingGate, Sensor};
pub use policy::{AdaptationPolicy, FnPolicy, NullPolicy};
