//! Built-in monitoring for adaptive objects.
//!
//! The paper's monitor module "senses changes in those object
//! characteristics that are required for reconfiguration" and delivers
//! them to the adaptation policy. Two knobs govern the cost/quality
//! trade-off (Section 3): the **diversity factor** (how many distinct
//! state variables are sensed) and the **sampling rate** (how often).
//! [`SamplingGate`] implements the rate ("sampled once during every other
//! unlock operation" in the TSP experiments is `SamplingGate::every(2)`).

use std::sync::atomic::{AtomicU64, Ordering};

/// A sensor reads one state variable of the monitored object.
pub trait Sensor {
    /// The sampled value's type.
    type Sample;

    /// Read the state variable. Implementations should be cheap — this
    /// runs inline on the object's hot path when closely coupled.
    fn sense(&self) -> Self::Sample;

    /// Human-readable sensor name (for traces and reports).
    fn name(&self) -> &'static str {
        "sensor"
    }
}

/// Blanket sensor from a closure.
pub struct FnSensor<F> {
    name: &'static str,
    f: F,
}

impl<F> FnSensor<F> {
    /// Wrap `f` as a named sensor.
    pub fn new<T>(name: &'static str, f: F) -> FnSensor<F>
    where
        F: Fn() -> T,
    {
        FnSensor { name, f }
    }
}

impl<T, F: Fn() -> T> Sensor for FnSensor<F> {
    type Sample = T;

    fn sense(&self) -> T {
        (self.f)()
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Event-count based sampling: fires once every `period` events.
///
/// Thread-safe and wait-free; the counter lives on the host, so a gate
/// check costs nothing in simulated time (the *sensing it gates* is what
/// gets charged).
#[derive(Debug)]
pub struct SamplingGate {
    period: u64,
    counter: AtomicU64,
}

impl SamplingGate {
    /// A gate firing every `period`-th event (period 1 = every event).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn every(period: u64) -> SamplingGate {
        assert!(period > 0, "sampling period must be positive");
        SamplingGate {
            period,
            counter: AtomicU64::new(0),
        }
    }

    /// Record one event; returns `true` when this event should be
    /// sampled. The first event of each period fires, so a freshly
    /// created gate fires on the first event.
    pub fn tick(&self) -> bool {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        n.is_multiple_of(self.period)
    }

    /// Configured period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Events seen so far.
    pub fn events(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.events().div_ceil(self.period)
    }
}

/// Aggregate statistics about a monitor's activity, for reasoning about
/// the paper's monitoring-cost-vs-information trade-off.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events that passed through the gate.
    pub events: u64,
    /// Events on which sensing actually happened.
    pub samples: u64,
}

impl MonitorStats {
    /// Fraction of events sampled, in `[0, 1]`.
    pub fn sampling_ratio(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.samples as f64 / self.events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_every_2_fires_on_alternate_events() {
        let g = SamplingGate::every(2);
        let fired: Vec<bool> = (0..6).map(|_| g.tick()).collect();
        assert_eq!(fired, vec![true, false, true, false, true, false]);
        assert_eq!(g.events(), 6);
        assert_eq!(g.samples(), 3);
        assert_eq!(g.period(), 2);
    }

    #[test]
    fn gate_every_1_always_fires() {
        let g = SamplingGate::every(1);
        assert!((0..5).all(|_| g.tick()));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = SamplingGate::every(0);
    }

    #[test]
    fn fn_sensor_reads_through() {
        use std::sync::atomic::AtomicUsize;
        let waiting = AtomicUsize::new(3);
        let s = FnSensor::new("no-of-waiting-threads", || waiting.load(Ordering::Relaxed));
        assert_eq!(s.sense(), 3);
        waiting.store(7, Ordering::Relaxed);
        assert_eq!(s.sense(), 7);
        assert_eq!(s.name(), "no-of-waiting-threads");
    }

    #[test]
    fn monitor_stats_ratio() {
        let m = MonitorStats { events: 10, samples: 5 };
        assert!((m.sampling_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(MonitorStats::default().sampling_ratio(), 0.0);
    }
}
