//! The configuration space `C = Γ × Φ` (Section 3.1).
//!
//! A configuration pairs a *method-set implementation* `Γ_i` (e.g. which
//! lock scheduler is installed) with an *attribute instance* `Φ_i` (the
//! current values of the mutable attributes). Reconfiguration (Ψ) moves
//! the object between configurations; [`TransitionLog`] records each move
//! with its cost so experiments can audit the adaptation trajectory.

use serde::{Deserialize, Serialize};

use crate::attrs::AttrSet;
use crate::cost::{OpCost, OpKind};

/// Identifies one element of Γ — a concrete implementation of the
/// object's method set (e.g. `"fcfs"`, `"priority"`, `"handoff"` for a
/// lock's scheduler component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct MethodSetId(pub &'static str);

impl std::fmt::Display for MethodSetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// A point in the configuration space: `⟨Γ_i, Φ_i⟩`.
#[derive(Debug, Clone, Serialize)]
pub struct Configuration {
    /// The installed method-set implementation.
    pub methods: MethodSetId,
    /// The attribute instance.
    pub attrs: AttrSet,
}

impl Configuration {
    /// Construct a configuration.
    pub fn new(methods: MethodSetId, attrs: AttrSet) -> Configuration {
        Configuration { methods, attrs }
    }

    /// Compact descriptor for traces: method-set name plus attributes.
    pub fn descriptor(&self) -> String {
        format!("{}{}", self.methods, self.attrs)
    }
}

/// One recorded Ψ (or I) transition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transition {
    /// Virtual-time nanoseconds at which the transition happened (0 when
    /// unknown / outside a simulation).
    pub at_nanos: u64,
    /// Operation category (Ψ for reconfiguration, I for initialization).
    pub kind: OpKind,
    /// `C_pre` descriptor.
    pub from: String,
    /// `C_post` descriptor.
    pub to: String,
    /// `t = n1 R n2 W`.
    pub cost: OpCost,
}

/// An append-only log of configuration transitions.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TransitionLog {
    transitions: Vec<Transition>,
}

impl TransitionLog {
    /// An empty log.
    pub fn new() -> TransitionLog {
        TransitionLog::default()
    }

    /// Record a transition.
    pub fn record(
        &mut self,
        at_nanos: u64,
        kind: OpKind,
        from: impl Into<String>,
        to: impl Into<String>,
        cost: OpCost,
    ) {
        self.transitions.push(Transition {
            at_nanos,
            kind,
            from: from.into(),
            to: to.into(),
            cost,
        });
    }

    /// All transitions, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Total reconfiguration cost accrued (sum rule for complex
    /// reconfigurations).
    pub fn total_cost(&self) -> OpCost {
        self.transitions
            .iter()
            .fold(OpCost::ZERO, |a, t| a + t.cost)
    }

    /// Number of transitions of a given kind.
    pub fn count_of(&self, kind: OpKind) -> usize {
        self.transitions.iter().filter(|t| t.kind == kind).count()
    }

    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrValue;

    #[test]
    fn configuration_descriptor() {
        let c = Configuration::new(
            MethodSetId("fcfs"),
            AttrSet::new().with("spin-time", AttrValue::Int(10)),
        );
        assert_eq!(c.descriptor(), "fcfs{spin-time=10}");
    }

    #[test]
    fn transition_log_accumulates() {
        let mut log = TransitionLog::new();
        log.record(0, OpKind::Initialization, "-", "fcfs{spin=10}", OpCost::new(0, 4));
        log.record(
            100,
            OpKind::Reconfiguration,
            "fcfs{spin=10}",
            "fcfs{spin=0}",
            OpCost::new(1, 1),
        );
        log.record(
            250,
            OpKind::Reconfiguration,
            "fcfs{spin=0}",
            "handoff{spin=0}",
            OpCost::new(0, 5),
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_of(OpKind::Reconfiguration), 2);
        assert_eq!(log.total_cost(), OpCost::new(1, 10));
        assert_eq!(log.transitions()[1].to, "fcfs{spin=0}");
        assert!(!log.is_empty());
    }
}
