//! Adaptation policies.
//!
//! A policy is the user-provided `P` in the paper's feedback loop
//! `M --v_i--> P --d_c--> Ψ`: it consumes monitored observations and
//! produces reconfiguration decisions. Policies are object-specific —
//! the lock crate instantiates [`AdaptationPolicy`] with lock
//! observations and lock reconfiguration decisions.

/// A user-provided adaptation policy.
pub trait AdaptationPolicy<Obs>: Send {
    /// The reconfiguration decision type this policy emits (`d_c`).
    type Decision;

    /// Consume one observation; `None` means "no change".
    fn decide(&mut self, obs: Obs) -> Option<Self::Decision>;

    /// Policy name for traces and reports.
    fn name(&self) -> &'static str {
        "policy"
    }
}

impl<Obs, P> AdaptationPolicy<Obs> for Box<P>
where
    P: AdaptationPolicy<Obs> + ?Sized,
{
    type Decision = P::Decision;

    fn decide(&mut self, obs: Obs) -> Option<Self::Decision> {
        (**self).decide(obs)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A policy that never adapts — turns an adaptive object back into a
/// plain reconfigurable one. Useful as an experimental control.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullPolicy;

impl<Obs> AdaptationPolicy<Obs> for NullPolicy {
    type Decision = std::convert::Infallible;

    fn decide(&mut self, _obs: Obs) -> Option<Self::Decision> {
        None
    }

    fn name(&self) -> &'static str {
        "null"
    }
}

/// Adapt via a plain function (for tests and one-off experiments).
pub struct FnPolicy<F> {
    name: &'static str,
    f: F,
}

impl<F> FnPolicy<F> {
    /// Wrap `f` as a named policy.
    pub fn new(name: &'static str, f: F) -> FnPolicy<F> {
        FnPolicy { name, f }
    }
}

impl<Obs, D, F> AdaptationPolicy<Obs> for FnPolicy<F>
where
    F: FnMut(Obs) -> Option<D> + Send,
{
    type Decision = D;

    fn decide(&mut self, obs: Obs) -> Option<D> {
        (self.f)(obs)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_policy_never_decides() {
        let mut p = NullPolicy;
        for i in 0..10 {
            assert!(AdaptationPolicy::<u32>::decide(&mut p, i).is_none());
        }
        assert_eq!(AdaptationPolicy::<u32>::name(&p), "null");
    }

    #[test]
    fn fn_policy_threads_state() {
        let mut seen = 0u32;
        let mut p = FnPolicy::new("thresh", move |obs: u32| {
            seen += obs;
            if seen > 5 {
                Some("block")
            } else {
                None
            }
        });
        assert_eq!(p.decide(2), None);
        assert_eq!(p.decide(2), None);
        assert_eq!(p.decide(2), Some("block"));
        assert_eq!(p.name(), "thresh");
    }
}
