//! Mutable object attributes (the paper's `CV` sub-state).
//!
//! An adaptive object's configuration is partly determined by a set of
//! named attributes that "may be specified and changed orthogonally to
//! the object's class". Attributes carry two time-dependent properties
//! (Section 3):
//!
//! * **mutability** — whether the attribute's value may currently be
//!   changed;
//! * **ownership** — which agent currently holds the right to change it.
//!   Ownership is acquired *implicitly* (by invoking one of a designated
//!   set of object methods — e.g. the lock holder reconfigures its own
//!   lock) or *explicitly* (an external agent invokes the `acquire`
//!   method).

use serde::{Deserialize, Serialize};

use crate::cost::OpCost;

/// Attribute names are interned static strings.
pub type AttrName = &'static str;

/// An agent (thread or external monitor) that can own attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OwnerId(pub u64);

/// A dynamically typed attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AttrValue {
    /// An integer attribute (e.g. `spin-time`).
    Int(i64),
    /// A boolean attribute.
    Bool(bool),
    /// A symbolic tag (e.g. a scheduler name).
    Tag(&'static str),
}

impl AttrValue {
    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Tag payload, if this is a `Tag`.
    pub fn as_tag(&self) -> Option<&'static str> {
        match self {
            AttrValue::Tag(v) => Some(v),
            _ => None,
        }
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Tag(v) => write!(f, "{v}"),
        }
    }
}

/// Errors from attribute operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrError {
    /// No attribute with that name exists on the object.
    Unknown(AttrName),
    /// The attribute is currently immutable.
    Immutable(AttrName),
    /// The attribute is owned by a different agent.
    Owned {
        /// The attribute in question.
        attr: AttrName,
        /// Who holds it.
        owner: OwnerId,
    },
    /// A type-mismatched value was supplied.
    TypeMismatch(AttrName),
}

impl std::fmt::Display for AttrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrError::Unknown(a) => write!(f, "unknown attribute `{a}`"),
            AttrError::Immutable(a) => write!(f, "attribute `{a}` is immutable"),
            AttrError::Owned { attr, owner } => {
                write!(f, "attribute `{attr}` is owned by agent {}", owner.0)
            }
            AttrError::TypeMismatch(a) => write!(f, "type mismatch for attribute `{a}`"),
        }
    }
}

impl std::error::Error for AttrError {}

#[derive(Debug, Clone, Serialize)]
struct AttrCell {
    name: AttrName,
    value: AttrValue,
    mutable: bool,
    owner: Option<OwnerId>,
}

/// An ordered set of attributes — one instance of the paper's `CV`.
///
/// Small and array-backed: adaptive objects have a handful of attributes
/// and the set is consulted on hot paths.
#[derive(Debug, Clone, Default, Serialize)]
pub struct AttrSet {
    cells: Vec<AttrCell>,
}

impl AttrSet {
    /// An empty attribute set.
    pub fn new() -> AttrSet {
        AttrSet::default()
    }

    /// Add an attribute (builder style). Panics on duplicate names —
    /// attribute vocabularies are static per object class.
    pub fn with(mut self, name: AttrName, value: AttrValue) -> AttrSet {
        assert!(
            self.find(name).is_none(),
            "duplicate attribute `{name}` in AttrSet"
        );
        self.cells.push(AttrCell {
            name,
            value,
            mutable: true,
            owner: None,
        });
        self
    }

    fn find(&self, name: AttrName) -> Option<usize> {
        self.cells.iter().position(|c| c.name == name)
    }

    /// Current value of `name`.
    pub fn get(&self, name: AttrName) -> Result<AttrValue, AttrError> {
        self.find(name)
            .map(|i| self.cells[i].value)
            .ok_or(AttrError::Unknown(name))
    }

    /// Integer value of `name` (convenience for hot paths).
    pub fn get_int(&self, name: AttrName) -> Result<i64, AttrError> {
        self.get(name)?
            .as_int()
            .ok_or(AttrError::TypeMismatch(name))
    }

    /// Set `name` to `value` on behalf of `agent`, enforcing mutability,
    /// ownership, and type stability. Returns the previous value.
    ///
    /// The paper costs a simple waiting-policy change as one read plus
    /// one write; the corresponding [`OpCost`] is `set_cost()`.
    pub fn set(
        &mut self,
        agent: OwnerId,
        name: AttrName,
        value: AttrValue,
    ) -> Result<AttrValue, AttrError> {
        let i = self.find(name).ok_or(AttrError::Unknown(name))?;
        let cell = &mut self.cells[i];
        if !cell.mutable {
            return Err(AttrError::Immutable(name));
        }
        if let Some(owner) = cell.owner {
            if owner != agent {
                return Err(AttrError::Owned { attr: name, owner });
            }
        }
        if std::mem::discriminant(&cell.value) != std::mem::discriminant(&value) {
            return Err(AttrError::TypeMismatch(name));
        }
        Ok(std::mem::replace(&mut cell.value, value))
    }

    /// Cost of one simple attribute change (`1R 1W` in the paper).
    pub const fn set_cost() -> OpCost {
        OpCost::new(1, 1)
    }

    /// Freeze or thaw an attribute's mutability.
    pub fn set_mutable(&mut self, name: AttrName, mutable: bool) -> Result<(), AttrError> {
        let i = self.find(name).ok_or(AttrError::Unknown(name))?;
        self.cells[i].mutable = mutable;
        Ok(())
    }

    /// Whether `name` is currently mutable.
    pub fn is_mutable(&self, name: AttrName) -> Result<bool, AttrError> {
        self.find(name)
            .map(|i| self.cells[i].mutable)
            .ok_or(AttrError::Unknown(name))
    }

    /// Explicit ownership acquisition by an external agent (the paper's
    /// rarely used `acquisition` method; cost comparable to test-and-set).
    pub fn acquire(&mut self, agent: OwnerId, name: AttrName) -> Result<(), AttrError> {
        let i = self.find(name).ok_or(AttrError::Unknown(name))?;
        let cell = &mut self.cells[i];
        match cell.owner {
            None => {
                cell.owner = Some(agent);
                Ok(())
            }
            Some(o) if o == agent => Ok(()),
            Some(o) => Err(AttrError::Owned { attr: name, owner: o }),
        }
    }

    /// Release ownership previously acquired by `agent`.
    pub fn release(&mut self, agent: OwnerId, name: AttrName) -> Result<(), AttrError> {
        let i = self.find(name).ok_or(AttrError::Unknown(name))?;
        let cell = &mut self.cells[i];
        match cell.owner {
            Some(o) if o == agent => {
                cell.owner = None;
                Ok(())
            }
            Some(o) => Err(AttrError::Owned { attr: name, owner: o }),
            None => Ok(()),
        }
    }

    /// Current owner of `name`, if any.
    pub fn owner(&self, name: AttrName) -> Result<Option<OwnerId>, AttrError> {
        self.find(name)
            .map(|i| self.cells[i].owner)
            .ok_or(AttrError::Unknown(name))
    }

    /// Attribute names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = AttrName> + '_ {
        self.cells.iter().map(|c| c.name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl std::fmt::Display for AttrSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", c.name, c.value)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_attrs() -> AttrSet {
        AttrSet::new()
            .with("spin-time", AttrValue::Int(10))
            .with("delay-time", AttrValue::Int(0))
            .with("sleep-time", AttrValue::Int(0))
            .with("timeout", AttrValue::Int(0))
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = lock_attrs();
        let agent = OwnerId(1);
        assert_eq!(a.get_int("spin-time").unwrap(), 10);
        let old = a.set(agent, "spin-time", AttrValue::Int(50)).unwrap();
        assert_eq!(old, AttrValue::Int(10));
        assert_eq!(a.get_int("spin-time").unwrap(), 50);
    }

    #[test]
    fn unknown_attribute_is_error() {
        let mut a = lock_attrs();
        assert_eq!(a.get("nope"), Err(AttrError::Unknown("nope")));
        assert_eq!(
            a.set(OwnerId(1), "nope", AttrValue::Int(1)),
            Err(AttrError::Unknown("nope"))
        );
    }

    #[test]
    fn immutability_blocks_set() {
        let mut a = lock_attrs();
        a.set_mutable("spin-time", false).unwrap();
        assert_eq!(
            a.set(OwnerId(1), "spin-time", AttrValue::Int(1)),
            Err(AttrError::Immutable("spin-time"))
        );
        a.set_mutable("spin-time", true).unwrap();
        assert!(a.set(OwnerId(1), "spin-time", AttrValue::Int(1)).is_ok());
    }

    #[test]
    fn ownership_is_exclusive() {
        let mut a = lock_attrs();
        let (alice, bob) = (OwnerId(1), OwnerId(2));
        a.acquire(alice, "spin-time").unwrap();
        // Re-acquisition by the holder is idempotent.
        a.acquire(alice, "spin-time").unwrap();
        assert_eq!(
            a.acquire(bob, "spin-time"),
            Err(AttrError::Owned {
                attr: "spin-time",
                owner: alice
            })
        );
        assert_eq!(
            a.set(bob, "spin-time", AttrValue::Int(9)),
            Err(AttrError::Owned {
                attr: "spin-time",
                owner: alice
            })
        );
        // The owner can still set.
        a.set(alice, "spin-time", AttrValue::Int(9)).unwrap();
        a.release(alice, "spin-time").unwrap();
        assert_eq!(a.owner("spin-time").unwrap(), None);
        a.set(bob, "spin-time", AttrValue::Int(3)).unwrap();
    }

    #[test]
    fn release_by_non_owner_is_error() {
        let mut a = lock_attrs();
        a.acquire(OwnerId(1), "timeout").unwrap();
        assert!(matches!(
            a.release(OwnerId(2), "timeout"),
            Err(AttrError::Owned { .. })
        ));
    }

    #[test]
    fn type_stability_enforced() {
        let mut a = lock_attrs();
        assert_eq!(
            a.set(OwnerId(1), "spin-time", AttrValue::Bool(true)),
            Err(AttrError::TypeMismatch("spin-time"))
        );
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_rejected() {
        let _ = AttrSet::new()
            .with("x", AttrValue::Int(0))
            .with("x", AttrValue::Int(1));
    }

    #[test]
    fn display_lists_attributes() {
        let a = AttrSet::new()
            .with("spin-time", AttrValue::Int(5))
            .with("mode", AttrValue::Tag("fcfs"));
        assert_eq!(format!("{a}"), "{spin-time=5, mode=fcfs}");
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(AttrSet::set_cost(), OpCost::new(1, 1));
    }
}
