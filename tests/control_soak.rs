//! The chaos soak, at CI scale: a seeded fault storm (25% of workers
//! killed, 1-in-64 critical sections panicking, dropped unparks,
//! stalled monitor samples) over a live lock registry while a command
//! driver issues randomized control traffic — graded against the hard
//! oracles from the issue's acceptance bar:
//!
//! * every scripted stall reaches `Quarantined` within 2 supervisor
//!   polls of the wedge being established;
//! * every breaker that opened records a `Healed` edge and every
//!   breaker finishes `Closed` (no stuck-open);
//! * the event chain is legal per target (no transition skips);
//! * conservation: each lock's counter equals the successful ops
//!   recorded against it (no lost update through panics, kills, policy
//!   retunes, and live algorithm switches);
//! * quiescence: every lock free and waiter-less after join (zero lost
//!   waiters);
//! * the driver's well-formed commands never error.

use adaptive_objects::native::{FaultSpec, PolicyChoice};
use adaptive_objects::workloads::{run_soak, SoakSpec};

/// The acceptance storm: deterministic seed, every fault kind on, at
/// the issue's rates (25% worker kills, 1-in-64 CS panics).
fn acceptance_spec(seed: u64) -> SoakSpec {
    SoakSpec {
        locks: 4,
        threads: 8,
        storm_polls: 20,
        calm_polls: 6,
        poll_millis: 20,
        stall_episodes: 3,
        faults: FaultSpec::seeded(seed)
            .with_cs_panics(64)
            .with_unpark_drops(96)
            .with_monitor_stalls(48)
            .with_worker_kills(25, 300),
        command_seed: seed ^ 0x5eed,
        policy: PolicyChoice::Adaptive { threshold: 2, n: 32 },
    }
}

#[test]
fn chaos_soak_upholds_every_oracle() {
    let spec = acceptance_spec(0xc1a05);
    let r = run_soak(&spec);

    // The storm actually stormed: faults flowed and doomed workers died.
    assert!(r.faults_cs_panics > 0, "no CS panics injected: {r:?}");
    assert_eq!(r.panics_absorbed, r.faults_cs_panics, "every injected panic absorbed");
    assert_eq!(r.workers_killed, 2, "25% of 8 workers die mid-storm");
    assert!(r.ops > 0, "survivors made progress");
    assert!(r.commands_ok > 0, "command traffic flowed");

    // Oracle: conservation (no lost update, panics and switches included).
    assert!(
        r.conservation_ok,
        "counter vs ops mismatch: total {} vs {}",
        r.counter_total, r.ops
    );

    // Oracle: breaker-state legality — no skips anywhere in the log.
    assert!(r.illegal.is_none(), "illegal chain: {:?}", r.illegal);

    // Oracle: every scripted stall condemned within 2 polls.
    assert_eq!(
        r.episodes.len() + r.episodes_skipped,
        3,
        "all scheduled episodes accounted for: {r:?}"
    );
    assert!(!r.episodes.is_empty(), "at least one stall episode ran");
    for ep in &r.episodes {
        let polls = ep
            .polls_to_quarantine
            .unwrap_or_else(|| panic!("stall on {} never quarantined: {r:?}", ep.target));
        assert!(
            polls <= 2,
            "stall on {} took {polls} polls to quarantine (bound: 2)",
            ep.target
        );
    }

    // Oracle: no stuck-open breaker; every opened breaker healed.
    assert!(r.opened_targets > 0, "storm opened at least one breaker");
    assert!(
        r.all_healed,
        "stuck-open or unhealed breaker: opened {}, healed {}: {r:?}",
        r.opened_targets, r.healed_targets
    );

    // Oracle: zero lost waiters at quiescence.
    assert!(r.quiescent, "lock busy or waiter stranded after join");

    // The driver only issues well-formed commands; all must succeed.
    assert_eq!(r.commands_err, 0, "control plane rejected a valid command");
}

#[test]
fn soak_is_deterministic_in_its_fault_seed() {
    // Same seed, same doomed-worker count and same injected CS panic
    // decisions *per draw* — wall-clock jitter changes how many draws
    // happen, so the invariant checked here is the deterministic part:
    // the kill set size and that both runs pass the oracles.
    let a = run_soak(&acceptance_spec(0x7ea7));
    let b = run_soak(&acceptance_spec(0x7ea7));
    assert_eq!(a.workers_killed, b.workers_killed);
    for r in [&a, &b] {
        assert!(r.conservation_ok && r.quiescent && r.illegal.is_none() && r.all_healed);
    }
}
