//! Property tests of the native failure model: a holder that panics at
//! a random point in a random workload never breaks the lock, and a
//! panic/recover cycle is invisible to the `simple-adapt` feedback
//! loop.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use adaptive_core::AdaptationPolicy;
use adaptive_objects::native::{
    AdaptiveMutex, FaultKind, FaultPlan, FaultSpec, NativeDecision, NativeObservation,
    NativeSimpleAdapt, NativeWaitingPolicy,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// For any seed, thread count, iteration count, panic rate, and
    /// waiting policy: a randomly-timed panicking holder never violates
    /// mutual exclusion, never strands a waiter, and always leaves the
    /// mutex poisoned-but-recoverable.
    #[test]
    fn panicking_holder_is_always_survivable(
        seed in any::<u64>(),
        threads in 2usize..6,
        iters in 8u64..48,
        one_in in 2u32..24,
        policy in 0u8..3,
    ) {
        let mutex = Arc::new(AdaptiveMutex::new(0u64));
        match policy {
            0 => mutex.set_waiting_policy(NativeWaitingPolicy::pure_blocking()),
            1 => mutex.set_waiting_policy(NativeWaitingPolicy::combined(40)),
            _ => {} // keep the adaptive default
        }
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(seed).with_cs_panics(one_in)));
        let holders = Arc::new(AtomicU32::new(0));
        let violated = Arc::new(AtomicBool::new(false));

        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let mutex = Arc::clone(&mutex);
                let plan = Arc::clone(&plan);
                let holders = Arc::clone(&holders);
                let violated = Arc::clone(&violated);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let mut g = match mutex.lock_checked() {
                                Ok(g) => g,
                                Err(poisoned) => {
                                    // A previous victim died mid-CS; the
                                    // counter is still consistent, so
                                    // recover and keep it.
                                    mutex.clear_poison();
                                    poisoned.into_inner()
                                }
                            };
                            if holders.fetch_add(1, Ordering::AcqRel) != 0 {
                                violated.store(true, Ordering::Release);
                            }
                            *g += 1;
                            let dying = plan.fires(FaultKind::CsPanic);
                            if holders.fetch_sub(1, Ordering::AcqRel) != 1 {
                                violated.store(true, Ordering::Release);
                            }
                            if dying {
                                panic!("fault-injection: critical-section panic");
                            }
                        }));
                    }
                })
            })
            .collect();
        // No stranded waiter: every join returns (a waiter parked
        // forever would hang here and fail by timeout).
        for h in handles {
            h.join().expect("workers absorb their own panics via catch_unwind");
        }

        prop_assert!(!violated.load(Ordering::Acquire), "mutual exclusion violated");
        prop_assert_eq!(mutex.waiting_now(), 0, "leaked waiting count");
        let stats = mutex.stats();
        prop_assert_eq!(stats.poison_events, plan.report().cs_panics);
        // Poisoned-but-recoverable: whatever state the run ended in, the
        // poison flag clears and the lock (and its value) remain usable.
        if mutex.is_poisoned() {
            prop_assert!(mutex.clear_poison());
        }
        prop_assert!(!mutex.is_poisoned());
        prop_assert_eq!(*mutex.lock(), threads as u64 * iters, "lost critical sections");
    }
}

/// Fixed-seed regression for the distributed ring's interaction with
/// worker death: a doomed searcher that dies with subproblems still in
/// its local ring queue must not orphan them — the supervisor reports
/// the stranded count, survivors steal the queue through the ring (or
/// the caller drains it), and the tour stays optimal.
#[test]
fn dead_workers_nonempty_ring_queue_is_never_lost() {
    use adaptive_objects::tsp::{
        solve_native, solve_sequential, NativeTspConfig, NativeVariant, TspInstance,
    };

    // Every worker is doomed, with deaths staggered over steps 4..11 by
    // the per-worker jitter. Partial kills are too polite for this
    // regression: on an oversubscribed host the idle majority siphons a
    // busy queue to ~zero between any two of its steps, so a lone doomed
    // worker usually dies empty-handed. With a total kill the last
    // searcher standing has no thieves left — it provably dies holding
    // the remaining frontier in its home queue.
    const SEED: u64 = 0x1993_0009;
    let spec = FaultSpec::seeded(SEED).with_worker_kills(100, 4);
    assert_eq!(
        FaultPlan::new(spec).doomed_workers(8).len(),
        8,
        "fixture spec must doom the whole crew"
    );

    let inst = TspInstance::random_euclidean(12, 500, 3);
    let (optimal, _) = solve_sequential(&inst);
    for variant in [NativeVariant::Distributed, NativeVariant::Balanced] {
        let plan = Arc::new(FaultPlan::new(spec));
        let res = solve_native(
            &inst,
            NativeTspConfig {
                searchers: 8,
                variant,
                faults: Some(Arc::clone(&plan)),
                ..NativeTspConfig::default()
            },
        );
        let label = variant.label();
        assert_eq!(res.best, optimal, "{label}: a dead worker's queue was lost");
        assert_eq!(res.workers_died, 8, "{label}: every doomed worker must die");
        assert!(
            res.orphaned > 0,
            "{label}: doomed workers died with empty queues; the regression scenario never ran"
        );
        assert!(
            res.residual_drained > 0,
            "{label}: the caller must drain what the dead crew left behind"
        );
        assert_eq!(res.dropped, 0, "{label}: every subproblem must be recovered");
    }
}

/// One feedback-loop sample as seen by the policy: the observed waiting
/// count and the decision it produced.
type Sample = (u64, Option<NativeDecision>);

/// A policy wrapper that logs every observation the feedback loop
/// actually delivered, so two runs can be compared sample-by-sample.
struct Recording {
    inner: NativeSimpleAdapt,
    log: Arc<Mutex<Vec<Sample>>>,
}

impl AdaptationPolicy<NativeObservation> for Recording {
    type Decision = NativeDecision;

    fn decide(&mut self, obs: NativeObservation) -> Option<NativeDecision> {
        let d = self.inner.decide(obs);
        self.log
            .lock()
            .expect("recording log is never poisoned")
            .push((obs.waiting, d));
        d
    }
}

/// Regression: a panic/recover cycle leaves the `simple-adapt`
/// statistics bit-identical to a run without it. The panicking release
/// goes through `unlock_raw`, which neither ticks the sampling gate nor
/// feeds the monitor — so the policy sees the exact same observation
/// sequence either way (with sampling period 1, even one stray sampled
/// unlock would show up as an extra log entry).
#[test]
fn panic_recover_cycle_is_invisible_to_the_feedback_loop() {
    let run = |inject: bool| {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mutex = AdaptiveMutex::with_policy(
            0u64,
            Box::new(Recording {
                inner: NativeSimpleAdapt::new(2, 32),
                log: Arc::clone(&log),
            }),
            1,
        );
        for i in 0..32u64 {
            if inject && i == 16 {
                let death = catch_unwind(AssertUnwindSafe(|| {
                    let _g = mutex.lock();
                    panic!("fault-injection: critical-section panic");
                }));
                assert!(death.is_err());
                assert!(mutex.is_poisoned(), "a dying holder must poison");
            }
            *mutex.lock() += 1;
        }
        let stats = mutex.stats();
        if inject {
            assert!(mutex.clear_poison(), "poison must be recoverable");
        }
        let log = log.lock().expect("recording log is never poisoned").clone();
        (log, stats)
    };

    let (log_clean, stats_clean) = run(false);
    let (log_faulted, stats_faulted) = run(true);

    assert_eq!(
        log_clean, log_faulted,
        "the panic/recover cycle leaked into the policy's observation stream"
    );
    assert_eq!(stats_clean.reconfigurations, stats_faulted.reconfigurations);
    assert_eq!(stats_clean.poison_events, 0);
    assert_eq!(stats_faulted.poison_events, 1);
}
