//! Native port of PR 1's `LockOracle` invariants: the schedule-exploration
//! harness checks the *simulated* lock family; this stress test checks the
//! real-thread `AdaptiveMutex` under genuine OS-scheduler nondeterminism.
//!
//! Invariants ported from `adaptive_locks::LockOracle`:
//!
//! * **Mutual exclusion** — a holder counter incremented on entry and
//!   decremented on exit never observes a second holder, and the sum of
//!   all critical-section increments is exact;
//! * **Waiting-count conservation** — `waiting_now()` returns to zero at
//!   quiescence (every `lock_contended` entry is matched by an exit);
//! * **No stranded waiter** — after the last unlock, every thread that
//!   ever waited has been granted (join completes; nothing parks
//!   forever).
//!
//! All runs use ≥ 8 threads with the waiting policy reconfigured
//! mid-run, both externally (`set_waiting_policy`) and by the
//! `simple-adapt` feedback loop itself.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adaptive_objects::native::{
    AdaptiveMutex, NativeSimpleAdapt, NativeWaitingPolicy, SPIN_FOREVER,
};

/// The state protected by the mutex in these tests: a holder counter
/// checked for mutual exclusion plus the count of completed critical
/// sections.
#[derive(Debug, Default)]
struct Oracle {
    completed: u64,
}

fn stress(
    mutex: Arc<AdaptiveMutex<Oracle>>,
    threads: u32,
    iters: u64,
    reconfigure: impl Fn(u64, &AdaptiveMutex<Oracle>) + Send + Sync + 'static,
) {
    let holders = Arc::new(AtomicU32::new(0));
    let violated = Arc::new(AtomicBool::new(false));
    let reconfigure = Arc::new(reconfigure);
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mutex = Arc::clone(&mutex);
            let holders = Arc::clone(&holders);
            let violated = Arc::clone(&violated);
            let reconfigure = Arc::clone(&reconfigure);
            std::thread::spawn(move || {
                for i in 0..iters {
                    if t == 0 {
                        // One thread doubles as the reconfigurer,
                        // flipping the waiting policy mid-run while the
                        // other ≥7 threads contend.
                        reconfigure(i, &mutex);
                    }
                    let mut g = mutex.lock();
                    // Mutual exclusion: we must be the only holder from
                    // acquisition to release.
                    if holders.fetch_add(1, Ordering::AcqRel) != 0 {
                        violated.store(true, Ordering::Release);
                    }
                    g.completed += 1;
                    if t % 3 == 0 {
                        std::hint::spin_loop(); // vary hold times a little
                    }
                    if holders.fetch_sub(1, Ordering::AcqRel) != 1 {
                        violated.store(true, Ordering::Release);
                    }
                    drop(g);
                }
            })
        })
        .collect();
    // No stranded waiter: every thread terminates (a waiter parked
    // forever would hang the join and fail the test by timeout).
    for h in handles {
        h.join().expect("no stress thread may panic");
    }
    assert!(
        !violated.load(Ordering::Acquire),
        "mutual exclusion violated"
    );
    // Exactness (`completed == threads * iters`) and waiting-count
    // conservation are asserted by the callers: a test may keep other
    // lock users running while `stress` finishes.
    assert!(
        mutex.lock().completed >= u64::from(threads) * iters,
        "lost critical sections"
    );
}

#[test]
fn oracle_invariants_hold_under_external_reconfiguration() {
    // 8 threads hammer the lock while thread 0 cycles the full waiting
    // policy attribute set: pure spin -> combined -> pure blocking.
    let mutex = Arc::new(AdaptiveMutex::with_policy(
        Oracle::default(),
        // A policy that never fires, so only the external flips steer.
        Box::new(NativeSimpleAdapt::new(u64::MAX, 0)),
        u64::MAX,
    ));
    stress(Arc::clone(&mutex), 8, 400, |i, m| {
        match i % 3 {
            0 => m.set_waiting_policy(NativeWaitingPolicy {
                spin: SPIN_FOREVER,
                delay: 16,
                timeout: None,
            }),
            1 => m.set_waiting_policy(NativeWaitingPolicy::combined(50)),
            _ => m.set_waiting_policy(NativeWaitingPolicy::pure_blocking()),
        };
    });
    assert_eq!(mutex.lock().completed, 8 * 400, "lost critical sections");
    // Waiting-count conservation: at quiescence every lock_contended
    // entry has been matched by an exit.
    assert_eq!(mutex.waiting_now(), 0, "stranded waiting count");
}

#[test]
fn oracle_invariants_hold_under_adaptive_feedback() {
    // The simple-adapt loop reconfigures on its own every other unlock;
    // thread 0 additionally jolts the attributes to force transitions
    // the feedback loop then has to recover from.
    let mutex = Arc::new(AdaptiveMutex::with_policy(
        Oracle::default(),
        Box::new(NativeSimpleAdapt::new(2, 32)),
        2,
    ));
    stress(Arc::clone(&mutex), 10, 300, |i, m| {
        if i % 64 == 0 {
            m.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
        }
    });
    assert_eq!(mutex.lock().completed, 10 * 300, "lost critical sections");
    assert_eq!(mutex.waiting_now(), 0, "stranded waiting count");
    let stats = mutex.stats();
    assert!(
        stats.reconfigurations > 0,
        "the feedback loop never reconfigured under contention"
    );
}

#[test]
fn oracle_invariants_hold_with_timed_waiters_in_the_mix() {
    // Timed acquires abandon queue nodes mid-run; pruning must never
    // strand a plain waiter or leak a waiting count.
    let mutex = Arc::new(AdaptiveMutex::new(Oracle::default()));
    let timed_mutex = Arc::clone(&mutex);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let timed = std::thread::spawn(move || {
        let mut granted = 0u64;
        while !stop2.load(Ordering::Acquire) {
            if let Some(mut g) = timed_mutex.lock_timeout(Duration::from_micros(80)) {
                g.completed += 1;
                granted += 1;
            }
        }
        granted
    });
    stress(Arc::clone(&mutex), 8, 300, |i, m| {
        if i % 50 == 0 {
            m.set_waiting_policy(NativeWaitingPolicy::combined(25));
        }
    });
    // `stress` already verified conservation for its own 8 threads —
    // but the timed thread is still running, so re-check quiescence
    // after it exits too.
    stop.store(true, Ordering::Release);
    let granted = timed.join().expect("timed thread must not panic");
    assert_eq!(
        mutex.lock().completed,
        8 * 300 + granted,
        "timed grants must be exact"
    );
    assert_eq!(mutex.waiting_now(), 0);
}
