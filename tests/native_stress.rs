//! Native port of PR 1's `LockOracle` invariants: the schedule-exploration
//! harness checks the *simulated* lock family; this stress test checks the
//! real-thread `AdaptiveMutex` under genuine OS-scheduler nondeterminism.
//!
//! Invariants ported from `adaptive_locks::LockOracle`:
//!
//! * **Mutual exclusion** — a holder counter incremented on entry and
//!   decremented on exit never observes a second holder, and the sum of
//!   all critical-section increments is exact;
//! * **Waiting-count conservation** — `waiting_now()` returns to zero at
//!   quiescence (every `lock_contended` entry is matched by an exit);
//! * **No stranded waiter** — after the last unlock, every thread that
//!   ever waited has been granted (join completes; nothing parks
//!   forever).
//!
//! All runs use ≥ 8 threads with the waiting policy reconfigured
//! mid-run, both externally (`set_waiting_policy`) and by the
//! `simple-adapt` feedback loop itself.
//!
//! The second half of the file drives the same invariants through the
//! seeded [`FaultPlan`]: critical-section panics (poisoning), dropped
//! and delayed unparks, stalled monitor feeds, timed-waiter abandonment
//! storms, and worker kills inside the TSP solver. Here the
//! `adaptive_locks::LockOracle` itself is the oracle — each real thread
//! reports acquire/release/poison events under a fabricated
//! `ThreadId`, and any capacity, ownership, or conservation violation
//! fails the test immediately.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adaptive_objects::locks::LockOracle;
use adaptive_objects::native::{
    AdaptiveMutex, FaultKind, FaultPlan, FaultSpec, FixedPolicy, LockAlgorithm, NativeDecision,
    NativeSimpleAdapt, NativeWaitingPolicy, SPIN_FOREVER,
};
use adaptive_objects::sim::ThreadId;
use adaptive_objects::tsp::{
    solve_native, solve_sequential, NativeTspConfig, NativeVariant, RetunePlan, TspInstance,
};

/// The state protected by the mutex in these tests: a holder counter
/// checked for mutual exclusion plus the count of completed critical
/// sections.
#[derive(Debug, Default)]
struct Oracle {
    completed: u64,
}

fn stress(
    mutex: Arc<AdaptiveMutex<Oracle>>,
    threads: u32,
    iters: u64,
    reconfigure: impl Fn(u64, &AdaptiveMutex<Oracle>) + Send + Sync + 'static,
) {
    let holders = Arc::new(AtomicU32::new(0));
    let violated = Arc::new(AtomicBool::new(false));
    let reconfigure = Arc::new(reconfigure);
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mutex = Arc::clone(&mutex);
            let holders = Arc::clone(&holders);
            let violated = Arc::clone(&violated);
            let reconfigure = Arc::clone(&reconfigure);
            std::thread::spawn(move || {
                for i in 0..iters {
                    if t == 0 {
                        // One thread doubles as the reconfigurer,
                        // flipping the waiting policy mid-run while the
                        // other ≥7 threads contend.
                        reconfigure(i, &mutex);
                    }
                    let mut g = mutex.lock();
                    // Mutual exclusion: we must be the only holder from
                    // acquisition to release.
                    if holders.fetch_add(1, Ordering::AcqRel) != 0 {
                        violated.store(true, Ordering::Release);
                    }
                    g.completed += 1;
                    if t % 3 == 0 {
                        std::hint::spin_loop(); // vary hold times a little
                    }
                    if holders.fetch_sub(1, Ordering::AcqRel) != 1 {
                        violated.store(true, Ordering::Release);
                    }
                    drop(g);
                }
            })
        })
        .collect();
    // No stranded waiter: every thread terminates (a waiter parked
    // forever would hang the join and fail the test by timeout).
    for h in handles {
        h.join().expect("no stress thread may panic");
    }
    assert!(
        !violated.load(Ordering::Acquire),
        "mutual exclusion violated"
    );
    // Exactness (`completed == threads * iters`) and waiting-count
    // conservation are asserted by the callers: a test may keep other
    // lock users running while `stress` finishes.
    assert!(
        mutex.lock().completed >= u64::from(threads) * iters,
        "lost critical sections"
    );
}

#[test]
fn oracle_invariants_hold_under_external_reconfiguration() {
    // 8 threads hammer the lock while thread 0 cycles the full waiting
    // policy attribute set: pure spin -> combined -> pure blocking.
    let mutex = Arc::new(AdaptiveMutex::with_policy(
        Oracle::default(),
        // A policy that never fires, so only the external flips steer.
        Box::new(NativeSimpleAdapt::new(u64::MAX, 0)),
        u64::MAX,
    ));
    stress(Arc::clone(&mutex), 8, 400, |i, m| {
        match i % 3 {
            0 => m.set_waiting_policy(NativeWaitingPolicy {
                spin: SPIN_FOREVER,
                delay: 16,
                timeout: None,
            }),
            1 => m.set_waiting_policy(NativeWaitingPolicy::combined(50)),
            _ => m.set_waiting_policy(NativeWaitingPolicy::pure_blocking()),
        };
    });
    assert_eq!(mutex.lock().completed, 8 * 400, "lost critical sections");
    // Waiting-count conservation: at quiescence every lock_contended
    // entry has been matched by an exit.
    assert_eq!(mutex.waiting_now(), 0, "stranded waiting count");
}

#[test]
fn oracle_invariants_hold_under_adaptive_feedback() {
    // The simple-adapt loop reconfigures on its own every other unlock;
    // thread 0 additionally jolts the attributes to force transitions
    // the feedback loop then has to recover from.
    let mutex = Arc::new(AdaptiveMutex::with_policy(
        Oracle::default(),
        Box::new(NativeSimpleAdapt::new(2, 32)),
        2,
    ));
    stress(Arc::clone(&mutex), 10, 300, |i, m| {
        if i % 64 == 0 {
            m.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
        }
    });
    assert_eq!(mutex.lock().completed, 10 * 300, "lost critical sections");
    assert_eq!(mutex.waiting_now(), 0, "stranded waiting count");
    let stats = mutex.stats();
    assert!(
        stats.reconfigurations > 0,
        "the feedback loop never reconfigured under contention"
    );
}

#[test]
fn oracle_invariants_hold_with_timed_waiters_in_the_mix() {
    // Timed acquires abandon queue nodes mid-run; pruning must never
    // strand a plain waiter or leak a waiting count.
    let mutex = Arc::new(AdaptiveMutex::new(Oracle::default()));
    let timed_mutex = Arc::clone(&mutex);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let timed = std::thread::spawn(move || {
        let mut granted = 0u64;
        while !stop2.load(Ordering::Acquire) {
            if let Some(mut g) = timed_mutex.lock_timeout(Duration::from_micros(80)) {
                g.completed += 1;
                granted += 1;
            }
        }
        granted
    });
    stress(Arc::clone(&mutex), 8, 300, |i, m| {
        if i % 50 == 0 {
            m.set_waiting_policy(NativeWaitingPolicy::combined(25));
        }
    });
    // `stress` already verified conservation for its own 8 threads —
    // but the timed thread is still running, so re-check quiescence
    // after it exits too.
    stop.store(true, Ordering::Release);
    let granted = timed.join().expect("timed thread must not panic");
    assert_eq!(
        mutex.lock().completed,
        8 * 300 + granted,
        "timed grants must be exact"
    );
    assert_eq!(mutex.waiting_now(), 0);
}

#[test]
fn oracle_invariants_hold_on_every_zoo_engine() {
    // The same stress pattern as the spin-park tests above, pinned to
    // each zoo engine: exclusion, exactness, and conservation are
    // engine-independent properties of the mutex.
    for algo in [LockAlgorithm::Ticket, LockAlgorithm::Queue, LockAlgorithm::Combining] {
        let mutex = Arc::new(AdaptiveMutex::new(Oracle::default()));
        mutex.set_algorithm(algo);
        stress(Arc::clone(&mutex), 8, 300, |i, m| {
            if i % 50 == 0 {
                // Attribute flips must be harmless on engines that
                // ignore most of the attribute set.
                m.set_waiting_policy(NativeWaitingPolicy::combined(25));
            }
        });
        assert_eq!(mutex.lock().completed, 8 * 300, "{algo:?}: lost critical sections");
        assert_eq!(mutex.waiting_now(), 0, "{algo:?}: stranded waiting count");
        assert_eq!(mutex.algorithm(), algo, "{algo:?}: nothing requested a switch");
    }
}

// ------------------------------------------------------------------------
// Fault-injection sweeps: the same oracle invariants, now with the
// protocol actively sabotaged by a seeded FaultPlan.
// ------------------------------------------------------------------------

/// Run `threads` real threads against one `AdaptiveMutex`, each
/// iteration acquiring, reporting to the `LockOracle`, and panicking
/// with the lock held whenever the plan's CS-panic stream fires. Every
/// thread recovers poisoned locks it encounters (`clear_poison` +
/// `Poisoned::into_inner`). Returns the total critical sections that ran
/// to completion (i.e. did not panic).
fn faulted_stress(
    mutex: &Arc<AdaptiveMutex<Oracle>>,
    oracle: &Arc<LockOracle>,
    plan: &Arc<FaultPlan>,
    threads: usize,
    iters: u64,
) -> u64 {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mutex = Arc::clone(mutex);
            let oracle = Arc::clone(oracle);
            let plan = Arc::clone(plan);
            std::thread::spawn(move || {
                let tid = ThreadId(t);
                let mut clean = 0u64;
                for _ in 0..iters {
                    let cs = catch_unwind(AssertUnwindSafe(|| {
                        let mut g = match mutex.lock_checked() {
                            Ok(g) => g,
                            Err(poisoned) => {
                                // Advisory poison left by an earlier
                                // victim: the counter invariant survives
                                // a mid-CS panic, so vouch for the value
                                // and keep going.
                                mutex.clear_poison();
                                poisoned.into_inner()
                            }
                        };
                        oracle.on_acquire(tid);
                        g.completed += 1;
                        if plan.fires(FaultKind::CsPanic) {
                            // The oracle sees the poison release exactly
                            // where the unwinder performs it (guard drop
                            // while panicking).
                            oracle.on_poison(tid);
                            panic!("fault-injection: critical-section panic");
                        }
                        oracle.on_release(tid);
                    }));
                    if cs.is_ok() {
                        clean += 1;
                    }
                }
                clean
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("oracle violations fail the worker, not the join"))
        .sum()
}

#[test]
fn cs_panics_poison_but_never_break_the_oracle() {
    let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(0xfa117).with_cs_panics(16)));
    let mutex = Arc::new(AdaptiveMutex::new(Oracle::default()));
    let oracle = LockOracle::mutex();
    let (threads, iters) = (8usize, 200u64);

    let clean = faulted_stress(&mutex, &oracle, &plan, threads, iters);

    let injected = plan.report().cs_panics;
    assert!(injected > 0, "one-in-16 over 1600 draws must fire");
    assert_eq!(clean, threads as u64 * iters - injected);
    // Every iteration incremented the counter before (possibly) dying:
    // panics poison, they do not lose critical sections.
    assert_eq!(mutex.lock().completed, threads as u64 * iters);
    assert_eq!(mutex.waiting_now(), 0, "stranded waiting count");

    // The oracle agrees event-by-event: each injected panic was seen as
    // a poison release by the then-current holder, and the permit came
    // back every time (quiescence).
    oracle.assert_quiescent();
    let counts = oracle.counts();
    assert_eq!(counts.poisons, injected);
    assert_eq!(counts.acquires, threads as u64 * iters);
    assert_eq!(counts.releases + counts.poisons, counts.acquires);

    // And the mutex's own books match: every panic poisoned, every
    // poison was recovered.
    let stats = mutex.stats();
    assert_eq!(stats.poison_events, injected);
    assert!(stats.poison_clears > 0, "recoveries must have happened");
    assert!(!mutex.is_poisoned() || mutex.clear_poison());
}

#[test]
fn unpark_faults_and_abandon_storms_never_strand_waiters() {
    // A fixed pure-blocking policy keeps every contended acquire parked,
    // maximizing exposure to dropped/delayed unparks; sampling still
    // runs (period 2) so the monitor-stall stream is exercised too.
    // Dropped unparks are survivable only because of the parker's
    // rescue poll — each one costs up to one poll interval, so the drop
    // rate is kept low.
    let plan = Arc::new(FaultPlan::new(
        FaultSpec::seeded(0xbad5eed)
            .with_unpark_drops(64)
            .with_unpark_delays(16, Duration::from_micros(50))
            .with_monitor_stalls(4)
            .with_abandon_storms(8),
    ));
    let mutex = Arc::new(AdaptiveMutex::with_policy(
        Oracle::default(),
        Box::new(FixedPolicy(NativeDecision::PureBlocking)),
        2,
    ));
    mutex.set_waiting_policy(NativeWaitingPolicy::pure_blocking());
    mutex.set_fault_hook(Arc::clone(&plan) as Arc<_>);
    let oracle = LockOracle::mutex();
    let timed_grants = Arc::new(AtomicU64::new(0));

    let (threads, iters) = (8usize, 100u64);
    // All threads start together and hold the lock long enough that a
    // convoy of parked waiters forms — otherwise the release path never
    // reaches the unpark injection point.
    let barrier = Arc::new(std::sync::Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mutex = Arc::clone(&mutex);
            let oracle = Arc::clone(&oracle);
            let plan = Arc::clone(&plan);
            let timed_grants = Arc::clone(&timed_grants);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let tid = ThreadId(t);
                barrier.wait();
                for _ in 0..iters {
                    let mut g = mutex.lock();
                    oracle.on_acquire(tid);
                    g.completed += 1;
                    for _ in 0..300 {
                        std::hint::spin_loop();
                    }
                    oracle.on_release(tid);
                    drop(g);
                    if t == 0 && plan.fires(FaultKind::AbandonStorm) {
                        // Abandonment storm: a burst of near-zero-timeout
                        // acquires that mostly abandon their queue nodes
                        // at once, racing the pruning path against the
                        // blocked crowd.
                        for _ in 0..6 {
                            if let Some(mut g) = mutex.lock_timeout(Duration::from_micros(30)) {
                                oracle.on_acquire(tid);
                                g.completed += 1;
                                timed_grants.fetch_add(1, Ordering::Relaxed);
                                oracle.on_release(tid);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no stress thread may panic");
    }

    // On a loaded host the free-for-all above may serialize without ever
    // parking a waiter, so force the release-with-queued-waiter path
    // until both unpark fault streams have demonstrably fired: hold the
    // lock, queue one waiter, release into it (one `before_unpark` draw
    // per round).
    let mut forced = 0u64;
    loop {
        let r = plan.report();
        if r.unparks_dropped > 0 && r.unparks_delayed > 0 {
            break;
        }
        forced += 1;
        assert!(forced < 2000, "unpark streams never fired ({r:?})");
        let holder = mutex.lock();
        oracle.on_acquire(ThreadId(100));
        let m2 = Arc::clone(&mutex);
        let o2 = Arc::clone(&oracle);
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            o2.on_acquire(ThreadId(101));
            g.completed += 1;
            o2.on_release(ThreadId(101));
        });
        while !mutex.has_queued_waiters() {
            std::hint::spin_loop();
        }
        oracle.on_release(ThreadId(100));
        drop(holder);
        waiter.join().expect("forced waiter must not panic");
    }

    // No stranded waiter, no leaked waiting count, no lost increment —
    // even though unparks were dropped outright.
    oracle.assert_quiescent();
    assert_eq!(mutex.waiting_now(), 0, "stranded waiting count");
    assert_eq!(
        mutex.lock().completed,
        threads as u64 * iters + timed_grants.load(Ordering::Relaxed) + forced,
        "lost critical sections"
    );
    let report = plan.report();
    assert!(report.abandon_storms > 0, "storm stream never fired");
    assert!(report.unparks_dropped > 0 && report.unparks_delayed > 0);
    assert!(report.monitor_stalls > 0, "monitor-stall stream never fired");
}

#[test]
fn cs_panics_poison_every_zoo_engine_without_breaking_the_oracle() {
    // `faulted_stress` (lock_checked + clear_poison + poison-reporting
    // unwinds) must behave identically on every engine.
    for algo in [LockAlgorithm::Ticket, LockAlgorithm::Queue, LockAlgorithm::Combining] {
        let plan = Arc::new(FaultPlan::new(FaultSpec::seeded(0xfa118).with_cs_panics(16)));
        let mutex = Arc::new(AdaptiveMutex::new(Oracle::default()));
        mutex.set_algorithm(algo);
        let oracle = LockOracle::mutex();
        let (threads, iters) = (8usize, 150u64);
        let clean = faulted_stress(&mutex, &oracle, &plan, threads, iters);
        let injected = plan.report().cs_panics;
        assert!(injected > 0, "{algo:?}: the CS-panic stream never fired");
        assert_eq!(clean, threads as u64 * iters - injected, "{algo:?}");
        assert_eq!(mutex.lock().completed, threads as u64 * iters, "{algo:?}");
        assert_eq!(mutex.waiting_now(), 0, "{algo:?}: stranded waiting count");
        oracle.assert_quiescent();
        let counts = oracle.counts();
        assert_eq!(counts.poisons, injected, "{algo:?}");
        assert_eq!(counts.releases + counts.poisons, counts.acquires, "{algo:?}");
        assert_eq!(mutex.algorithm(), algo, "{algo:?}");
    }
}

/// The tentpole acceptance test: a running, contended lock migrates
/// between all four engines while 10 threads (half through guards, half
/// through `with_locked`) hammer it, critical sections panic, and
/// unparks are dropped. The `LockOracle` audits every event; zero lost
/// waiters means the joins complete and the waiting count conserves.
#[test]
fn live_algorithm_switches_under_faults_lose_no_waiters() {
    let plan = Arc::new(FaultPlan::new(
        FaultSpec::seeded(0x5147c4)
            .with_cs_panics(64)
            .with_unpark_drops(64),
    ));
    let mutex = Arc::new(AdaptiveMutex::new(Oracle::default()));
    mutex.set_fault_hook(Arc::clone(&plan) as Arc<_>);
    let oracle = LockOracle::mutex();
    let (threads, iters) = (10usize, 200u64);
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mutex = Arc::clone(&mutex);
            let oracle = Arc::clone(&oracle);
            let plan = Arc::clone(&plan);
            std::thread::spawn(move || {
                let tid = ThreadId(t);
                for i in 0..iters {
                    if t == 0 && i % 10 == 0 {
                        // The switcher: cycle through every engine while
                        // the other 9 threads contend.
                        let algos = LockAlgorithm::ALL;
                        mutex.set_algorithm(algos[((i / 10) as usize) % algos.len()]);
                    }
                    if t % 2 == 0 {
                        // Publication path: combines under the combining
                        // engine, plain guarded lock elsewhere.
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            mutex.with_locked(|o| {
                                oracle.on_acquire(tid);
                                o.completed += 1;
                                if plan.fires(FaultKind::CsPanic) {
                                    oracle.on_poison(tid);
                                    panic!("fault-injection: combined CS panic");
                                }
                                oracle.on_release(tid);
                            });
                        }));
                        mutex.clear_poison();
                    } else {
                        // Guard path, recovering any poison it meets.
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let mut g = match mutex.lock_checked() {
                                Ok(g) => g,
                                Err(poisoned) => {
                                    mutex.clear_poison();
                                    poisoned.into_inner()
                                }
                            };
                            oracle.on_acquire(tid);
                            g.completed += 1;
                            if plan.fires(FaultKind::CsPanic) {
                                oracle.on_poison(tid);
                                panic!("fault-injection: critical-section panic");
                            }
                            oracle.on_release(tid);
                        }));
                    }
                }
            })
        })
        .collect();
    // Zero lost waiters: every thread joins (a waiter stranded by a
    // mid-switch lost wakeup would hang here).
    for h in handles {
        h.join().expect("no stress thread may panic");
    }
    mutex.set_algorithm(LockAlgorithm::SpinPark);
    assert_eq!(
        mutex.lock().completed,
        threads as u64 * iters,
        "a live switch dropped a critical section"
    );
    assert_eq!(mutex.waiting_now(), 0, "stranded waiting count");
    oracle.assert_quiescent();
    let counts = oracle.counts();
    assert_eq!(counts.acquires, threads as u64 * iters);
    assert_eq!(counts.releases + counts.poisons, counts.acquires);
    let stats = mutex.stats();
    assert!(
        stats.algorithm_switches > 0,
        "the run never actually migrated engines"
    );
    assert!(plan.report().cs_panics > 0, "the CS-panic stream never fired");
}

/// The acceptance demo of the failure model, end to end: 25% of the TSP
/// workers are killed mid-search and one in 64 critical sections panics
/// with a shared lock held — yet the solver returns the known-optimal
/// tour, the lock-protocol oracle stays silent under the same fault
/// plan, the poisoned locks report recovery, and the run is
/// deterministic under the fixed fault seed.
#[test]
fn demo_faulted_tsp_stays_exact_with_quarter_of_workers_dead() {
    const DEMO_SEED: u64 = 0x1993_0615; // fixed fault seed (HPDC '93)
    let spec = FaultSpec::seeded(DEMO_SEED)
        .with_cs_panics(64)
        .with_worker_kills(25, 4);

    // Part 1 — the lock protocol under this plan's fault kinds, checked
    // event-by-event: no oracle invariant fires.
    {
        let plan = Arc::new(FaultPlan::new(spec));
        let mutex = Arc::new(AdaptiveMutex::new(Oracle::default()));
        let oracle = LockOracle::mutex();
        faulted_stress(&mutex, &oracle, &plan, 8, 150);
        oracle.assert_quiescent();
        assert_eq!(oracle.counts().poisons, plan.report().cs_panics);
    }

    // Part 2 — the solver under the same spec, once per program
    // structure: 2 of 8 searchers die, CS panics poison the shared locks
    // mid-expansion, and every structure's answer is still exact.
    let inst = TspInstance::random_euclidean(11, 500, 42);
    let (optimal, _) = solve_sequential(&inst);
    for variant in NativeVariant::ALL {
        let run = || {
            let plan = Arc::new(FaultPlan::new(spec));
            let res = solve_native(
                &inst,
                NativeTspConfig {
                    searchers: 8,
                    variant,
                    faults: Some(Arc::clone(&plan)),
                    ..NativeTspConfig::default()
                },
            );
            (res, plan.report())
        };

        let label = variant.label();
        let (a, ra) = run();
        assert_eq!(a.best, optimal, "{label}: search must stay exact under faults");
        assert_eq!(a.workers_died, 2, "{label}: exactly 25% of 8 workers die");
        assert_eq!(a.worker_panics, a.workers_died + ra.cs_panics, "{label}");
        assert_eq!(a.dropped, 0, "{label}: the retry budget must absorb every panic");
        assert!(ra.cs_panics > 0, "{label}: the CS-panic stream never fired");
        assert!(
            a.poison_recoveries > 0,
            "{label}: poisoned shared locks must report recovery"
        );

        // Deterministic under the fixed seed: the doomed-worker set, the
        // exactness of the answer, and the recovery guarantees reproduce.
        let (b, rb) = run();
        assert_eq!(b.best, a.best, "{label}");
        assert_eq!(b.workers_died, a.workers_died, "{label}");
        assert_eq!(b.dropped, a.dropped, "{label}");
        assert!(rb.cs_panics > 0 && b.poison_recoveries > 0, "{label}");
    }
}

/// ISSUE 4's stress sweep: the distributed ring structures at 8–10
/// searcher threads (oversubscribed on small hosts) with the waiting
/// policy of every `qlock` and best-tour lock reconfigured mid-run by a
/// [`RetunePlan`] cycling pure-spin -> combined -> pure-blocking. The
/// sequential solver is the oracle; distribution, stealing, load
/// balancing, and retuning may change the clock, never the answer.
#[test]
fn distributed_structures_stay_exact_under_mid_run_retuning() {
    let inst = TspInstance::random_euclidean(12, 500, 3);
    let (optimal, _) = solve_sequential(&inst);
    for variant in [NativeVariant::Distributed, NativeVariant::Balanced] {
        for searchers in [8usize, 10] {
            let res = solve_native(
                &inst,
                NativeTspConfig {
                    searchers,
                    variant,
                    retune: Some(RetunePlan::full_cycle(16)),
                    ..NativeTspConfig::default()
                },
            );
            let label = variant.label();
            assert_eq!(res.best, optimal, "{label} x {searchers}");
            assert_eq!(res.per_queue_locks.len(), searchers, "{label} x {searchers}");
            assert!(res.retunes > 0, "{label} x {searchers}: retune plan never fired");
            assert_eq!(res.dropped, 0, "{label} x {searchers}");
            // Quiescence: the merged qlock books balance — every
            // contended acquisition was eventually granted and released
            // (a stranded waiter would have hung the solver's join).
            assert!(res.queue_lock().acquisitions > 0, "{label} x {searchers}");
        }
    }
}
