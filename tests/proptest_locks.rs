//! Property-based tests of the lock family: mutual exclusion, fairness,
//! and adaptation invariants hold for *arbitrary* workload shapes, lock
//! placements, and policy parameters.

use adaptive_objects::prelude::*;
use adaptive_locks::{Lock, LockDecision, LockObservation, SimpleAdapt};
use adaptive_core::AdaptationPolicy;
use butterfly_sim::SimCell;
use proptest::prelude::*;
use std::sync::Arc;
use workloads::LockSpec;

/// Strategy: any lock variant.
fn any_lock_spec() -> impl Strategy<Value = LockSpec> {
    prop_oneof![
        Just(LockSpec::Spin),
        Just(LockSpec::SpinBackoff),
        Just(LockSpec::Ticket),
        Just(LockSpec::Mcs),
        Just(LockSpec::Blocking),
        (1u32..64).prop_map(LockSpec::Combined),
        (1u64..8, 1u32..32).prop_map(|(threshold, n)| LockSpec::Adaptive { threshold, n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// No interleaving of threads, processors, critical-section lengths,
    /// or lock variants ever loses an update: mutual exclusion is
    /// unconditional.
    #[test]
    fn mutual_exclusion_is_unconditional(
        spec in any_lock_spec(),
        procs in 1usize..5,
        threads_per_proc in 1usize..3,
        iters in 1u32..12,
        cs_us in 1u64..80,
        home in 0usize..4,
        seed in any::<u64>(),
    ) {
        let threads = procs * threads_per_proc;
        let home = home % procs;
        let (total, _) = sim::run(
            SimConfig { processors: procs, seed, ..SimConfig::default() },
            move || {
                let lock: Arc<dyn Lock> = spec.build(NodeId(home));
                let counter = SimCell::new_on(NodeId(home), 0u64);
                let handles: Vec<_> = (0..threads)
                    .map(|i| {
                        let (lock, counter) = (Arc::clone(&lock), counter.clone());
                        fork(ProcId(i % procs), format!("w{i}"), move || {
                            for _ in 0..iters {
                                lock.lock();
                                let v = counter.read();
                                ctx::advance(Duration::micros(cs_us));
                                counter.write(v + 1);
                                lock.unlock();
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
                counter.read()
            },
        )
        .unwrap();
        prop_assert_eq!(total, threads as u64 * iters as u64);
    }

    /// Whatever happens, a lock's statistics stay self-consistent:
    /// as many releases as acquisitions once everything joined, and
    /// contended acquisitions never exceed total acquisitions.
    #[test]
    fn stats_are_self_consistent(
        spec in any_lock_spec(),
        procs in 2usize..5,
        iters in 1u32..10,
    ) {
        let (stats, _) = sim::run(SimConfig::butterfly(procs), move || {
            let lock: Arc<dyn Lock> = spec.build(ctx::current_node());
            let handles: Vec<_> = (0..procs)
                .map(|p| {
                    let lock = Arc::clone(&lock);
                    fork(ProcId(p), format!("w{p}"), move || {
                        for _ in 0..iters {
                            with_lock(lock.as_ref(), || ctx::advance(Duration::micros(5)));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            lock.stats()
        })
        .unwrap();
        let expected = procs as u64 * iters as u64;
        prop_assert_eq!(stats.acquisitions, expected);
        prop_assert_eq!(stats.releases, expected);
        prop_assert!(stats.contended <= stats.acquisitions);
        prop_assert!(stats.handoffs <= stats.contended);
    }

    /// The blocking lock grants strictly in arrival order regardless of
    /// arrival spacing (FIFO fairness).
    #[test]
    fn blocking_lock_is_fifo(
        gaps in proptest::collection::vec(1u64..200, 2..5),
    ) {
        let n = gaps.len();
        let (order, _) = sim::run(SimConfig::butterfly(n + 1), move || {
            let lock = Arc::new(BlockingLock::new_local());
            let order = SimCell::new_local(Vec::<usize>::new());
            lock.lock();
            let mut cum = 0;
            let handles: Vec<_> = gaps
                .iter()
                .enumerate()
                .map(|(i, &g)| {
                    cum += g;
                    let (lock, order) = (Arc::clone(&lock), order.clone());
                    let arrive = Duration::micros(cum);
                    fork(ProcId(i + 1), format!("w{i}"), move || {
                        ctx::advance(arrive);
                        lock.lock();
                        order.poke(|v| v.push(i));
                        lock.unlock();
                    })
                })
                .collect();
            // Ensure everyone queued before release.
            ctx::advance(Duration::millis(10));
            lock.unlock();
            for h in handles {
                h.join();
            }
            order.peek()
        })
        .unwrap();
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(order, expected);
    }

    /// simple-adapt invariants for arbitrary parameters and observation
    /// sequences: zero waiting always means pure spin; decisions never
    /// propose negative spin counts; once waiting exceeds the threshold
    /// long enough, the policy reaches pure blocking.
    #[test]
    fn simple_adapt_invariants(
        threshold in 1u64..16,
        n in 1u32..64,
        observations in proptest::collection::vec(0u64..20, 1..50),
    ) {
        let mut p = SimpleAdapt::new(threshold, n);
        for &w in &observations {
            match p.decide(LockObservation { waiting: w, at: VirtualTime::ZERO }) {
                Some(LockDecision::PureSpin) => prop_assert_eq!(w, 0),
                Some(LockDecision::SetSpins(s)) => prop_assert!(s > 0),
                Some(LockDecision::PureBlocking) => prop_assert!(w > threshold),
                other => prop_assert!(false, "unexpected decision {:?}", other),
            }
        }
        // Saturate: enough heavy samples always reach pure blocking.
        let mut reached = false;
        for _ in 0..2_000 {
            if p.decide(LockObservation { waiting: threshold + 1, at: VirtualTime::ZERO })
                == Some(LockDecision::PureBlocking)
            {
                reached = true;
                break;
            }
        }
        prop_assert!(reached);
    }

    /// Reconfiguring the waiting policy mid-contention never breaks
    /// mutual exclusion or strands a waiter.
    #[test]
    fn reconfiguration_under_load_is_safe(
        flips in proptest::collection::vec(prop_oneof![Just(0u8), Just(1), Just(2)], 1..8),
        procs in 2usize..5,
    ) {
        let (total, _) = sim::run(SimConfig::butterfly(procs), move || {
            let lock = Arc::new(ReconfigurableLock::new_local());
            let counter = SimCell::new_local(0u64);
            let stop = butterfly_sim::SimWord::new_local(0);
            let workers: Vec<_> = (1..procs)
                .map(|p| {
                    let (lock, counter, stop) = (Arc::clone(&lock), counter.clone(), stop.clone());
                    fork(ProcId(p), format!("w{p}"), move || {
                        while stop.load() == 0 {
                            with_lock(lock.as_ref(), || {
                                let v = counter.read();
                                ctx::advance(Duration::micros(20));
                                counter.write(v + 1);
                            });
                        }
                    })
                })
                .collect();
            // The main thread flips configurations while workers run.
            for f in &flips {
                ctx::advance(Duration::micros(300));
                let policy = match f {
                    0 => WaitingPolicy::pure_spin(),
                    1 => WaitingPolicy::pure_blocking(),
                    _ => WaitingPolicy::combined(8),
                };
                lock.configure_policy(adaptive_locks::agent(), policy).unwrap();
            }
            ctx::advance(Duration::millis(1));
            stop.store(1);
            for h in workers {
                h.join();
            }
            // Lock still functional afterwards.
            with_lock(lock.as_ref(), || ());
            counter.read()
        })
        .unwrap();
        prop_assert!(total > 0);
    }
}
