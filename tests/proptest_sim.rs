//! Property-based tests of the simulator engine: determinism, clock
//! monotonicity, cost accounting, and park/unpark liveness for
//! arbitrary schedules.

use adaptive_objects::prelude::*;
use butterfly_sim::{SimCell, SimWord};
use proptest::prelude::*;

/// One scripted action for a worker thread.
#[derive(Debug, Clone, Copy)]
enum Action {
    Work(u64),
    Sleep(u64),
    Yield,
    Touch(u8),
    Rmw(u8),
}

fn any_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..500).prop_map(Action::Work),
        (1u64..300).prop_map(Action::Sleep),
        Just(Action::Yield),
        any::<u8>().prop_map(Action::Touch),
        any::<u8>().prop_map(Action::Rmw),
    ]
}

fn run_script(
    procs: usize,
    seed: u64,
    scripts: Vec<Vec<Action>>,
) -> (u64, u64, Vec<u64>) {
    let (out, report) = sim::run(
        SimConfig {
            processors: procs,
            seed,
            ..SimConfig::default()
        },
        move || {
            let cells: Vec<SimWord> = (0..procs)
                .map(|i| SimWord::new_on(NodeId(i), 0))
                .collect();
            let clock_ok = SimCell::new_local(true);
            let handles: Vec<_> = scripts
                .into_iter()
                .enumerate()
                .map(|(i, script)| {
                    let cells = cells.clone();
                    let clock_ok = clock_ok.clone();
                    fork(ProcId(i % procs), format!("w{i}"), move || {
                        let mut last = ctx::now();
                        for a in script {
                            match a {
                                Action::Work(us) => ctx::advance(Duration::micros(us)),
                                Action::Sleep(us) => ctx::sleep(Duration::micros(us)),
                                Action::Yield => ctx::yield_now(),
                                Action::Touch(c) => {
                                    cells[c as usize % cells.len()].store(u64::from(c));
                                }
                                Action::Rmw(c) => {
                                    cells[c as usize % cells.len()].fetch_add(1);
                                }
                            }
                            let now = ctx::now();
                            if now < last {
                                clock_ok.poke(|v| *v = false);
                            }
                            last = now;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert!(clock_ok.peek(), "a thread observed time going backwards");
            cells.iter().map(SimWord::peek).sum::<u64>()
        },
    )
    .unwrap();
    (
        out,
        report.end_time.as_nanos(),
        report.proc_busy.iter().map(|d| d.as_nanos()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Same configuration and program => bit-identical outcome, end
    /// time, and per-processor busy accounting.
    #[test]
    fn runs_are_reproducible(
        procs in 1usize..5,
        seed in any::<u64>(),
        scripts in proptest::collection::vec(
            proptest::collection::vec(any_action(), 0..20),
            1..6,
        ),
    ) {
        let a = run_script(procs, seed, scripts.clone());
        let b = run_script(procs, seed, scripts);
        prop_assert_eq!(a, b);
    }

    /// Busy time per processor never exceeds the run's end time, and the
    /// report's memory counters match the issued operations.
    #[test]
    fn accounting_is_conservative(
        procs in 1usize..4,
        reads in 0u64..40,
        writes in 0u64..40,
        rmws in 0u64..40,
    ) {
        let (_, report) = sim::run(SimConfig::butterfly(procs), move || {
            let w = SimWord::new_local(0);
            for _ in 0..reads {
                w.load();
            }
            for _ in 0..writes {
                w.store(1);
            }
            for _ in 0..rmws {
                w.fetch_add(1);
            }
        })
        .unwrap();
        prop_assert_eq!(report.mem.reads(), reads + rmws);
        prop_assert_eq!(report.mem.writes(), writes + rmws);
        prop_assert_eq!(report.mem.rmws, rmws);
        for busy in &report.proc_busy {
            prop_assert!(busy.as_nanos() <= report.end_time.as_nanos());
        }
    }

    /// Park/unpark across arbitrary delays never loses a wakeup. (Note:
    /// unpark permits coalesce like `std::thread::unpark`, so the waker
    /// acknowledges each round before issuing the next one.)
    #[test]
    fn unpark_never_lost(
        pre_delay in 0u64..500,
        post_delay in 0u64..500,
        pairs in 1u32..8,
    ) {
        let (rounds, _) = sim::run(SimConfig::butterfly(2), move || {
            let me = ctx::current();
            let acks = SimWord::new_local(0);
            let acks2 = acks.clone();
            let waker = fork(ProcId(1), "waker", move || {
                for round in 0..pairs {
                    ctx::advance(Duration::micros(pre_delay + 1));
                    ctx::unpark(me);
                    // Wait for the parked side to acknowledge before the
                    // next unpark (permits do not stack).
                    while acks2.load() <= u64::from(round) {
                        ctx::sleep(Duration::micros(post_delay + 1));
                    }
                }
            });
            for _ in 0..pairs {
                ctx::park();
                acks.fetch_add(1);
            }
            waker.join();
            acks.load()
        })
        .unwrap();
        prop_assert_eq!(rounds, u64::from(pairs));
    }

    /// Sleeping always advances virtual time by at least the requested
    /// span, never by pathologically more on an idle machine.
    #[test]
    fn sleep_duration_is_honored(us in 1u64..10_000) {
        let (elapsed, _) = sim::run(SimConfig::butterfly(1), move || {
            let t0 = ctx::now();
            ctx::sleep(Duration::micros(us));
            ctx::now().since(t0)
        })
        .unwrap();
        prop_assert!(elapsed >= Duration::micros(us));
        // Idle machine: wake + redispatch is the only overhead.
        prop_assert!(elapsed <= Duration::micros(us) + Duration::millis(1));
    }
}
