//! Cross-crate integration tests: the full stack (simulator → thread
//! package → locks → monitor → application) exercised end to end.

use adaptive_objects::monitor::{pattern_series, spawn_local_monitor};
use adaptive_objects::prelude::*;
use adaptive_locks::{Advice, AdvisoryLock, SimpleAdapt};
use butterfly_sim::SimWord;
use std::sync::Arc;

#[test]
fn adaptive_locks_never_change_the_tsp_answer() {
    let inst = TspInstance::random_symmetric(9, 100, 2024);
    let oracle = inst.held_karp();
    for variant in Variant::ALL {
        for lock_impl in [
            LockImpl::Blocking,
            LockImpl::Adaptive { threshold: 3, n: 5 },
            LockImpl::Spin,
            LockImpl::SpinBackoff,
        ] {
            let inst2 = inst.clone();
            let (res, _) = sim::run(SimConfig::butterfly(4), move || {
                solve_parallel(
                    &inst2,
                    variant,
                    TspConfig {
                        searchers: 4,
                        lock_impl,
                        ..TspConfig::default()
                    },
                )
            })
            .unwrap();
            assert_eq!(res.best, oracle, "{variant:?} with {lock_impl:?}");
        }
    }
}

#[test]
fn whole_stack_is_deterministic() {
    fn run_once() -> (u32, u64, u64) {
        let inst = TspInstance::random_euclidean(12, 500, 7);
        let (res, report) = sim::run(SimConfig::butterfly(6), move || {
            solve_parallel(
                &inst,
                Variant::Distributed,
                TspConfig {
                    searchers: 6,
                    lock_impl: LockImpl::Adaptive { threshold: 4, n: 10 },
                    trace_locks: true,
                    ..TspConfig::default()
                },
            )
        })
        .unwrap();
        (res.best, res.elapsed.as_nanos(), report.events)
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn adaptive_beats_blocking_on_the_contended_centralized_queue() {
    // The paper's Table 1 effect, as a regression test at small scale.
    let run = |lock_impl| {
        let inst = TspInstance::random_euclidean(14, 800, 1993);
        let (res, _) = sim::run(SimConfig::butterfly(8), move || {
            solve_parallel(
                &inst,
                Variant::Centralized,
                TspConfig {
                    searchers: 8,
                    lock_impl,
                    ..TspConfig::default()
                },
            )
        })
        .unwrap();
        res.elapsed
    };
    let blocking = run(LockImpl::Blocking);
    let adaptive = run(LockImpl::Adaptive { threshold: 10, n: 20 });
    assert!(
        adaptive < blocking,
        "adaptive ({adaptive}) must beat blocking ({blocking}) under central-queue contention"
    );
}

#[test]
fn lock_traces_feed_the_monitor_timeseries() {
    let inst = TspInstance::random_symmetric(9, 100, 5);
    let (series, _) = sim::run(SimConfig::butterfly(4), move || {
        let res = solve_parallel(
            &inst,
            Variant::Centralized,
            TspConfig {
                searchers: 4,
                trace_locks: true,
                ..TspConfig::default()
            },
        );
        pattern_series("qlock", &res.qlock_trace)
    })
    .unwrap();
    assert!(!series.is_empty());
    assert!(series.max() >= 1.0, "some contention expected on the central queue");
    let bucketed = series.bucket_mean(1_000_000);
    assert!(bucketed.len() <= series.len());
    assert!(!series.to_csv().is_empty());
}

#[test]
fn loosely_coupled_monitor_and_adaptive_lock_coexist() {
    // An external monitor thread watches a sensor stream while adaptive
    // locks adapt inline — the paper's two coupling styles side by side.
    let ((events, reconfigs), _) = sim::run(SimConfig::butterfly(4), || {
        let (port, handle) = spawn_local_monitor(ProcId(3), Duration::micros(200));
        let lock = Arc::new(AdaptiveLock::with_policy(
            ctx::current_node(),
            Box::new(SimpleAdapt::new(2, 5)),
            2,
        ));
        let workers: Vec<_> = (0..3)
            .map(|p| {
                let (lock, port) = (Arc::clone(&lock), port.clone());
                fork(ProcId(p), format!("w{p}"), move || {
                    for _ in 0..20 {
                        with_lock(lock.as_ref(), || ctx::advance(Duration::micros(100)));
                        port.record("waiting", lock.waiting_now() as i64);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        let reconfigs = lock.stats().reconfigurations;
        drop(port);
        let report = handle.join();
        (report.events, reconfigs)
    })
    .unwrap();
    assert_eq!(events, 60);
    assert!(reconfigs > 0);
}

#[test]
fn advisory_lock_tracks_owner_phases_through_the_stack() {
    let (history, _) = sim::run(SimConfig::butterfly(2), || {
        let lock = Arc::new(AdvisoryLock::new_local());
        let l2 = Arc::clone(&lock);
        let bg = fork(ProcId(1), "bg", move || {
            for _ in 0..10 {
                with_lock(l2.as_ref(), || ctx::advance(Duration::micros(20)));
            }
        });
        let mut history = Vec::new();
        for phase in 0..4 {
            lock.lock();
            let advice = if phase % 2 == 0 { Advice::Spin } else { Advice::Sleep };
            lock.advise(advice).unwrap();
            history.push(lock.advice());
            ctx::advance(Duration::micros(200));
            lock.unlock();
        }
        bg.join();
        history
    })
    .unwrap();
    assert_eq!(
        history,
        vec![Advice::Spin, Advice::Sleep, Advice::Spin, Advice::Sleep]
    );
}

#[test]
fn simulated_and_native_policies_agree() {
    // The same simple-adapt rules drive both the simulated lock and the
    // native mutex; feed both the same observation sequence and compare
    // the decision trajectories.
    use adaptive_core::AdaptationPolicy;
    use adaptive_locks::{LockDecision, LockObservation};
    use adaptive_objects::native::{NativeDecision, NativeSimpleAdapt};

    let mut sim_policy = SimpleAdapt::new(3, 5);
    let mut native_policy = NativeSimpleAdapt::new(3, 5);
    // The two start from different nominal spin counts (simulated probes
    // vs native spin-loop iterations), so compare rule *structure*, not
    // exact values: zero waiting means pure spin for both, and sustained
    // over-threshold waiting drives both to pure blocking.
    let zero_s = sim_policy.decide(LockObservation {
        waiting: 0,
        at: VirtualTime::ZERO,
    });
    let zero_n = native_policy.decide(adaptive_objects::native::NativeObservation::of(0));
    assert_eq!(zero_s, Some(LockDecision::PureSpin));
    assert_eq!(zero_n, Some(NativeDecision::PureSpin));

    let mut sim_blocked = false;
    let mut native_blocked = false;
    for _ in 0..64 {
        if sim_policy.decide(LockObservation {
            waiting: 9,
            at: VirtualTime::ZERO,
        }) == Some(LockDecision::PureBlocking)
        {
            sim_blocked = true;
        }
        if native_policy.decide(adaptive_objects::native::NativeObservation::of(9))
            == Some(NativeDecision::PureBlocking)
        {
            native_blocked = true;
        }
    }
    assert!(sim_blocked, "simulated policy never reached pure blocking");
    assert!(native_blocked, "native policy never reached pure blocking");
}

#[test]
fn shared_words_behave_like_butterfly_memory() {
    // End-to-end NUMA sanity through the facade.
    let ((local, remote), _) = sim::run(SimConfig::butterfly(2), || {
        let here = SimWord::new_on(NodeId(0), 0);
        let there = SimWord::new_on(NodeId(1), 0);
        let t0 = ctx::now();
        for _ in 0..10 {
            here.atomior(1);
        }
        let local = ctx::now().since(t0);
        let t1 = ctx::now();
        for _ in 0..10 {
            there.atomior(1);
        }
        (local, ctx::now().since(t1))
    })
    .unwrap();
    assert!(remote > local * 2, "remote RMWs should cost several times local");
}
