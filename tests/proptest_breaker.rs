//! Property tests of the circuit-breaker state machine: under *any*
//! interleaving of watchdog findings and operator overrides, the
//! lifecycle stays legal (every edge one of the seven allowed, no
//! `Closed → Quarantined` skip), the half-open trial always resolves,
//! a quarantine dwell is bounded by the capped backoff, and an
//! all-clear tail always converges back to `Closed`.

use adaptive_objects::control::{
    validate_chain, Breaker, BreakerConfig, BreakerState, Finding, Transition,
};
use proptest::prelude::*;

/// One step of the simulated world: a watchdog finding reaching the
/// breaker on a poll, or an operator override between polls.
#[derive(Debug, Clone, Copy)]
enum Op {
    Poll(Finding),
    ForceOpen,
    ForceProbe,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Polls appear twice so findings dominate operator overrides, which
    // are rare in practice (the vendored `prop_oneof!` is unweighted).
    prop_oneof![
        Just(Op::Poll(Finding::Clear)),
        Just(Op::Poll(Finding::Clear)),
        Just(Op::Poll(Finding::Stall)),
        Just(Op::Poll(Finding::Stall)),
        Just(Op::Poll(Finding::Poison)),
        Just(Op::Poll(Finding::Poison)),
        Just(Op::Poll(Finding::PolicyPanic)),
        Just(Op::Poll(Finding::PolicyPanic)),
        Just(Op::ForceOpen),
        Just(Op::ForceProbe),
    ]
}

fn config_strategy() -> impl Strategy<Value = BreakerConfig> {
    (1u32..4, 0u32..5, 1u32..4, 1u32..4).prop_map(
        |(open_base_polls, max_backoff_shift, trial_polls, suspect_patience)| BreakerConfig {
            open_base_polls,
            max_backoff_shift,
            trial_polls,
            suspect_patience,
        },
    )
}

/// Drive `ops` through a breaker, collecting every transition taken (in
/// order) and checking the in-flight invariants as they apply.
fn drive(config: BreakerConfig, ops: &[Op]) -> (Breaker, Vec<Transition>) {
    let mut b = Breaker::new(config);
    let mut edges: Vec<Transition> = Vec::new();
    // Consecutive polls spent inside HalfOpen without leaving it.
    let mut half_open_streak = 0u32;
    // Consecutive *clear* polls spent inside Quarantined.
    let mut quiet_open_streak = 0u32;
    for op in ops {
        let before = b.state();
        let step = match *op {
            Op::Poll(f) => b.step(f),
            Op::ForceOpen => b.force_open(),
            Op::ForceProbe => b.force_probe(),
        };
        edges.extend(step.transitions.iter().copied());

        if let Op::Poll(f) = *op {
            if before == BreakerState::HalfOpen && b.state() == BreakerState::HalfOpen {
                half_open_streak += 1;
                assert!(
                    half_open_streak < config.trial_polls,
                    "half-open never resolved: {half_open_streak} polls with trial_polls={}",
                    config.trial_polls
                );
            } else {
                half_open_streak = 0;
            }
            if before == BreakerState::Quarantined
                && b.state() == BreakerState::Quarantined
                && f == Finding::Clear
            {
                quiet_open_streak += 1;
                let cap = config.open_base_polls << config.max_backoff_shift;
                assert!(
                    quiet_open_streak < cap,
                    "quiet dwell exceeded the backoff cap: {quiet_open_streak} >= {cap}"
                );
            } else {
                quiet_open_streak = 0;
            }
        } else {
            half_open_streak = 0;
            quiet_open_streak = 0;
        }
    }
    (b, edges)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Any interleaving of findings and operator overrides produces a
    /// legal transition chain: starts from `Closed`, every edge among
    /// the seven legal ones, edges consecutive. In particular a lock is
    /// never condemned without evidence (`Closed → Quarantined` is not
    /// an edge) and never un-condemned in one hop (`Quarantined →
    /// Closed` is not an edge either).
    #[test]
    fn any_interleaving_yields_a_legal_chain(
        config in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let (_, edges) = drive(config, &ops);
        validate_chain(edges.iter()).expect("legal chain");
        for e in &edges {
            prop_assert!(
                !(e.from == BreakerState::Closed && e.to == BreakerState::Quarantined),
                "skipped Suspect: {e:?}"
            );
            prop_assert!(
                !(e.from == BreakerState::Quarantined && e.to == BreakerState::Closed),
                "skipped the half-open trial: {e:?}"
            );
        }
    }

    /// After any history, a clean world (all-`Clear` findings) always
    /// brings the breaker back to `Closed`, within the worst-case dwell
    /// plus trial plus re-arm budget — no stuck-open state exists.
    #[test]
    fn all_clear_tail_always_converges_to_closed(
        config in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..120),
    ) {
        let (mut b, _) = drive(config, &ops);
        let budget = (config.open_base_polls << config.max_backoff_shift)
            + config.trial_polls
            + config.suspect_patience
            + 4;
        let mut polls = 0;
        while b.state() != BreakerState::Closed {
            b.step(Finding::Clear);
            polls += 1;
            prop_assert!(
                polls <= budget,
                "not converged after {polls} clear polls (state {:?}, budget {budget})",
                b.state()
            );
        }
        // And it stays closed in a clean world.
        b.step(Finding::Clear);
        prop_assert_eq!(b.state(), BreakerState::Closed);
    }

    /// A stall always condemns within two polls of arriving, whatever
    /// state the breaker was in, and the resulting chain passes through
    /// `Suspect` (no skip) — the acceptance bound of the soak harness,
    /// proven over arbitrary prior histories.
    #[test]
    fn a_stall_is_condemned_within_two_polls(
        config in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..120),
    ) {
        let (mut b, _) = drive(config, &ops);
        b.step(Finding::Stall);
        if b.state() != BreakerState::Quarantined {
            b.step(Finding::Stall);
        }
        prop_assert_eq!(b.state(), BreakerState::Quarantined);
    }
}
