//! Property-based end-to-end TSP tests: for arbitrary instances, every
//! parallel implementation with every lock family finds exactly the
//! Held–Karp optimum — parallelism and adaptation change the clock,
//! never the answer.

use adaptive_objects::prelude::*;
use proptest::prelude::*;

fn any_variant() -> impl Strategy<Value = Variant> {
    prop_oneof![
        Just(Variant::Centralized),
        Just(Variant::Distributed),
        Just(Variant::Balanced),
    ]
}

fn any_lock_impl() -> impl Strategy<Value = LockImpl> {
    prop_oneof![
        Just(LockImpl::Blocking),
        Just(LockImpl::Spin),
        Just(LockImpl::SpinBackoff),
        (1u64..8, 1u32..32).prop_map(|(threshold, n)| LockImpl::Adaptive { threshold, n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        ..ProptestConfig::default()
    })]

    #[test]
    fn parallel_always_finds_the_optimum(
        n in 6usize..10,
        seed in any::<u64>(),
        euclidean in any::<bool>(),
        variant in any_variant(),
        lock_impl in any_lock_impl(),
        searchers in 2usize..5,
    ) {
        let inst = if euclidean {
            TspInstance::random_euclidean(n, 500, seed)
        } else {
            TspInstance::random_symmetric(n, 100, seed)
        };
        let oracle = inst.held_karp();
        let (res, _) = sim::run(SimConfig::butterfly(searchers), move || {
            solve_parallel(
                &inst,
                variant,
                TspConfig {
                    searchers,
                    lock_impl,
                    ..TspConfig::default()
                },
            )
        })
        .unwrap();
        prop_assert_eq!(res.best, oracle);
        prop_assert!(res.stats.tours >= 1);
        prop_assert!(res.stats.expanded >= 1);
    }

    #[test]
    fn sequential_solvers_agree(
        n in 5usize..11,
        seed in any::<u64>(),
    ) {
        let inst = TspInstance::random_symmetric(n, 250, seed);
        let (lmsk, stats) = tsp_app::solve_sequential(&inst);
        prop_assert_eq!(lmsk, inst.held_karp());
        // Accounting invariants of the search itself.
        prop_assert!(stats.generated <= 2 * stats.expanded);
        prop_assert!(stats.tours >= 1);
    }

    #[test]
    fn native_structures_all_find_the_optimum(
        n in 6usize..9,
        seed in any::<u64>(),
        euclidean in any::<bool>(),
        searchers in 2usize..5,
    ) {
        // The OS-thread solver's three program structures (centralized,
        // distributed ring, distributed + load balancing) must agree
        // with the sequential solver on arbitrary instances, under real
        // scheduler nondeterminism.
        use adaptive_objects::tsp::{solve_native, NativeTspConfig, NativeVariant};
        let inst = if euclidean {
            TspInstance::random_euclidean(n, 500, seed)
        } else {
            TspInstance::random_symmetric(n, 100, seed)
        };
        let (oracle, _) = tsp_app::solve_sequential(&inst);
        for variant in NativeVariant::ALL {
            let res = solve_native(&inst, NativeTspConfig {
                searchers,
                variant,
                ..NativeTspConfig::default()
            });
            prop_assert_eq!(res.best, oracle, "structure {}", variant.label());
            let queues = if variant == NativeVariant::Centralized { 1 } else { searchers };
            prop_assert_eq!(res.per_queue_locks.len(), queues);
            prop_assert_eq!(res.dropped, 0);
        }
    }

    #[test]
    fn distributed_never_misses_work(
        n in 6usize..9,
        seed in any::<u64>(),
    ) {
        // After any distributed run, every queue must be empty and the
        // per-processor best-tour copies must have converged to the
        // global optimum (propagation completeness).
        let inst = TspInstance::random_symmetric(n, 100, seed);
        let oracle = inst.held_karp();
        let (res, _) = sim::run(SimConfig::butterfly(3), move || {
            solve_parallel(
                &inst,
                Variant::Distributed,
                TspConfig {
                    searchers: 3,
                    ..TspConfig::default()
                },
            )
        })
        .unwrap();
        prop_assert_eq!(res.best, oracle);
    }
}
