//! Property-based tests of the reader-writer lock family: for arbitrary
//! mixes of readers and writers, arbitrary section lengths, and both
//! preference policies (plus the adaptive one), writers are exclusive,
//! readers share, and nothing deadlocks.

use adaptive_objects::prelude::*;
use adaptive_locks::{AdaptiveRwLock, RwLock as SimRwLock, RwPolicy};
use butterfly_sim::SimCell;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
enum RwVariant {
    ReaderPref,
    WriterPref,
    Adaptive,
}

fn any_variant() -> impl Strategy<Value = RwVariant> {
    prop_oneof![
        Just(RwVariant::ReaderPref),
        Just(RwVariant::WriterPref),
        Just(RwVariant::Adaptive),
    ]
}

/// Tracks invariants observed inside critical sections:
/// (active readers, active writers, max readers seen, violations).
type Ledger = SimCell<(i64, i64, i64, u64)>;

fn enter_read(l: &Ledger) {
    l.poke(|v| {
        if v.1 != 0 {
            v.3 += 1; // reader overlapped a writer
        }
        v.0 += 1;
        v.2 = v.2.max(v.0);
    });
}

fn exit_read(l: &Ledger) {
    l.poke(|v| v.0 -= 1);
}

fn enter_write(l: &Ledger) {
    l.poke(|v| {
        if v.0 != 0 || v.1 != 0 {
            v.3 += 1; // writer overlapped someone
        }
        v.1 += 1;
    });
}

fn exit_write(l: &Ledger) {
    l.poke(|v| v.1 -= 1);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        ..ProptestConfig::default()
    })]

    #[test]
    fn writers_exclusive_readers_share(
        variant in any_variant(),
        procs in 2usize..5,
        iters in 1u32..10,
        // Per-thread role pattern: which iterations write.
        write_mod in 2usize..5,
        cs_us in 1u64..120,
        seed in any::<u64>(),
    ) {
        let ((violations, shared), _) = sim::run(
            SimConfig { processors: procs, seed, ..SimConfig::default() },
            move || {
                enum AnyRw {
                    Plain(SimRwLock),
                    Adaptive(AdaptiveRwLock),
                }
                impl AnyRw {
                    fn read<R>(&self, f: impl FnOnce() -> R) -> R {
                        match self {
                            AnyRw::Plain(l) => l.read(f),
                            AnyRw::Adaptive(l) => l.read(f),
                        }
                    }
                    fn write<R>(&self, f: impl FnOnce() -> R) -> R {
                        match self {
                            AnyRw::Plain(l) => l.write(f),
                            AnyRw::Adaptive(l) => l.write(f),
                        }
                    }
                }
                let lock = Arc::new(match variant {
                    RwVariant::ReaderPref => {
                        AnyRw::Plain(SimRwLock::new_on(ctx::current_node(), RwPolicy::ReaderPreferring))
                    }
                    RwVariant::WriterPref => {
                        AnyRw::Plain(SimRwLock::new_on(ctx::current_node(), RwPolicy::WriterPreferring))
                    }
                    RwVariant::Adaptive => AnyRw::Adaptive(AdaptiveRwLock::new_local()),
                });
                let ledger: Ledger = SimCell::new_local((0, 0, 0, 0));
                let handles: Vec<_> = (0..procs)
                    .map(|p| {
                        let (lock, ledger) = (Arc::clone(&lock), ledger.clone());
                        fork(ProcId(p), format!("w{p}"), move || {
                            for i in 0..iters {
                                if (p + i as usize).is_multiple_of(write_mod) {
                                    lock.write(|| {
                                        enter_write(&ledger);
                                        ctx::advance(Duration::micros(cs_us));
                                        exit_write(&ledger);
                                    });
                                } else {
                                    lock.read(|| {
                                        enter_read(&ledger);
                                        ctx::advance(Duration::micros(cs_us));
                                        exit_read(&ledger);
                                    });
                                }
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
                let (_, _, max_readers, violations) = ledger.peek();
                (violations, max_readers)
            },
        )
        .unwrap();
        prop_assert_eq!(violations, 0, "read/write exclusion violated");
        prop_assert!(shared >= 1);
    }

    /// Runs are deterministic for the RW family too.
    #[test]
    fn rw_runs_reproducible(
        procs in 2usize..4,
        iters in 1u32..6,
        seed in any::<u64>(),
    ) {
        fn run_once(procs: usize, iters: u32, seed: u64) -> u64 {
            sim::run(
                SimConfig { processors: procs, seed, ..SimConfig::default() },
                move || {
                    let lock = Arc::new(AdaptiveRwLock::new_local());
                    let handles: Vec<_> = (0..procs)
                        .map(|p| {
                            let lock = Arc::clone(&lock);
                            fork(ProcId(p), format!("w{p}"), move || {
                                for i in 0..iters {
                                    if i % 2 == 0 {
                                        lock.write(|| ctx::advance(Duration::micros(40)));
                                    } else {
                                        lock.read(|| ctx::advance(Duration::micros(40)));
                                    }
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join();
                    }
                    ctx::now().as_nanos()
                },
            )
            .unwrap()
            .0
        }
        prop_assert_eq!(run_once(procs, iters, seed), run_once(procs, iters, seed));
    }
}
