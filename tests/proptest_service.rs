//! Property tests of the sharded adaptive service: counter
//! conservation and key visibility must survive any interleaving of
//! concurrent ops with mid-run resharding, and the open-loop load
//! generator's arrival schedule must be a pure function of its seed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adaptive_objects::service::{ServiceConfig, ServicePolicy, ShardedStore};
use adaptive_objects::workloads::{arrival_schedule, ServiceLoadSpec};
use proptest::prelude::*;

fn eager_split_config(initial_depth: u32, max_depth: u32) -> ServiceConfig {
    ServiceConfig {
        initial_depth,
        max_depth,
        // Thresholds at the floor: maintenance splits any shard that
        // saw traffic, so every case exercises live resharding.
        split_contended_per_sec: 0.0,
        split_min_acquisitions: 1,
        split_imbalance_factor: 0.0,
        split_sustain: 1,
        policy: ServicePolicy::HotShard {
            high_water: 2,
            patience: 2,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// For any worker count, op count, keyspace, and seed: with a
    /// maintenance thread aggressively splitting shards underneath,
    /// the sum of all counters equals the number of increments applied
    /// (nothing lost, nothing double-applied) and every key any worker
    /// wrote is visible afterwards through normal routing.
    #[test]
    fn conservation_and_visibility_survive_mid_run_resharding(
        workers in 2usize..5,
        ops in 64u64..512,
        keyspace in 1u64..64,
        seed in any::<u64>(),
    ) {
        let store = Arc::new(ShardedStore::new(eager_split_config(1, 6)));
        let stop = Arc::new(AtomicBool::new(false));
        let splitter = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    store.maintenance();
                    std::thread::yield_now();
                }
            })
        };

        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    // Deterministic per-worker key walk derived from the
                    // case seed; mixes hot reuse with coverage.
                    let mut x = seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    for i in 0..ops {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let key = (x >> 33) % keyspace;
                        store.increment(key, 1);
                        if i % 7 == 0 {
                            // Read-your-write through live routing.
                            assert!(
                                store.get(key).is_some(),
                                "key {key} vanished right after an increment"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("service workers never panic");
        }
        stop.store(true, Ordering::Release);
        splitter.join().expect("maintenance thread never panics");

        let expected = workers as u64 * ops;
        prop_assert_eq!(
            store.total(),
            u128::from(expected),
            "increments lost or double-applied across resharding"
        );
        // Every key that got traffic is visible, and the per-key sums
        // re-add to the same total through point reads.
        let mut readback = 0u128;
        for key in 0..keyspace {
            if let Some(v) = store.get(key) {
                readback += u128::from(v);
            }
        }
        prop_assert_eq!(readback, u128::from(expected), "point reads disagree with total()");
        prop_assert!(store.shard_count() >= 2, "eager thresholds must actually split");
    }

    /// The arrival schedule is a pure function of (spec, worker): same
    /// seed reproduces it element-for-element, a different seed moves
    /// it, and it is always nondecreasing with every arrival inside an
    /// on-phase.
    #[test]
    fn arrival_schedules_are_seed_deterministic(
        seed in any::<u64>(),
        worker in 0usize..8,
        ops in 1u32..400,
        rate_kops in 1u64..2_000,
        on in 100_000u64..5_000_000,
        off in 0u64..5_000_000,
    ) {
        let spec = ServiceLoadSpec {
            ops_per_worker: ops,
            rate_per_worker: rate_kops as f64 * 1_000.0,
            burst_on_nanos: on,
            burst_off_nanos: off,
            seed,
            ..ServiceLoadSpec::default()
        };
        let a = arrival_schedule(&spec, worker);
        prop_assert_eq!(a.len(), ops as usize);
        prop_assert_eq!(&a, &arrival_schedule(&spec, worker), "same seed must replay exactly");
        let moved = ServiceLoadSpec { seed: seed ^ 1, ..spec };
        prop_assert_ne!(&a, &arrival_schedule(&moved, worker));
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals must be nondecreasing");
        if off > 0 {
            let period = on + off;
            for &t in &a {
                prop_assert!(
                    t % period <= on + 1,
                    "arrival at {} fell inside an off-phase", t
                );
            }
        }
    }
}

/// Fixed-scenario regression: a put is visible through routing even
/// when its home shard splits between the write and the read, and
/// updates routed through a stale directory snapshot still land
/// exactly once.
#[test]
fn puts_stay_visible_across_an_explicit_split() {
    let store = ShardedStore::new(eager_split_config(0, 4));
    for key in 0..128u64 {
        store.put(key, key * 3);
    }
    // Split repeatedly until the depth cap stops progress.
    while store.maintenance() > 0 {}
    assert!(store.shard_count() > 1, "the store must have resharded");
    for key in 0..128u64 {
        assert_eq!(store.get(key), Some(key * 3), "key {key} lost by resharding");
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let h = scope.spawn(|| {
            while !stop.load(Ordering::Acquire) {
                store.maintenance();
                std::thread::sleep(Duration::from_micros(50));
            }
        });
        for key in 0..128u64 {
            store.increment(key, 1);
        }
        stop.store(true, Ordering::Release);
        h.join().expect("splitter never panics");
        for key in 0..128u64 {
            assert_eq!(store.get(key), Some(key * 3 + 1), "increment on {key} misapplied");
        }
    });
}
