//! Property and regression tests for the striped statistics slabs
//! behind `AdaptiveMutex::stats()`.
//!
//! The hot-path refactor split the counters two ways: the acquisition
//! count moved *onto* the state line (plain load + store under the
//! lock — no RMW), and every other counter moved into per-stripe
//! cache-padded slabs aggregated lazily. These tests pin the two
//! behaviors that refactor must not change: (1) the counts are
//! *exact* — no lost or double counts under arbitrary cross-thread
//! interleavings, including the poison/panic paths — and (2) the
//! sampling gate still observes every other unlock (the paper's
//! monitor cadence), now decided at acquire time from the serialized
//! acquisition count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adaptive_core::AdaptationPolicy;
use adaptive_objects::native::{AdaptiveMutex, NativeDecision, NativeObservation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// For any thread count, per-thread workload, try_lock mix, and
    /// panic cadence: the striped counters, summed lazily by `stats()`,
    /// equal ground truth tallied independently by the workers
    /// themselves. Threads land on different stripes (and migrate
    /// between runs), so this exercises arbitrary interleavings of
    /// increments across the slab.
    #[test]
    fn striped_aggregation_is_exact(
        threads in 1usize..8,
        iters in 1u64..64,
        try_every in 1u64..8,
        panic_every in 2u64..32,
    ) {
        let mutex = Arc::new(AdaptiveMutex::new(0u64));
        let true_acquisitions = Arc::new(AtomicU64::new(0));
        let true_try_failures = Arc::new(AtomicU64::new(0));
        let true_panics = Arc::new(AtomicU64::new(0));

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mutex = Arc::clone(&mutex);
                let acq = Arc::clone(&true_acquisitions);
                let tf = Arc::clone(&true_try_failures);
                let pan = Arc::clone(&true_panics);
                std::thread::spawn(move || {
                    for i in 0..iters {
                        let step = t as u64 * iters + i;
                        if step.is_multiple_of(try_every) {
                            // try_lock leg: a success is an acquisition,
                            // a failure must be counted exactly once.
                            match mutex.try_lock() {
                                Some(mut g) => {
                                    acq.fetch_add(1, Ordering::Relaxed);
                                    *g += 1;
                                }
                                None => {
                                    tf.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            continue;
                        }
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let mut g = match mutex.lock_checked() {
                                Ok(g) => g,
                                Err(poisoned) => {
                                    mutex.clear_poison();
                                    poisoned.into_inner()
                                }
                            };
                            acq.fetch_add(1, Ordering::Relaxed);
                            *g += 1;
                            if step.is_multiple_of(panic_every) {
                                pan.fetch_add(1, Ordering::Relaxed);
                                panic!("striping test: poison-path increment");
                            }
                        }));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("workers absorb their own panics");
        }

        // Writers quiescent: the lazy sum must now be exact.
        let stats = mutex.stats();
        prop_assert_eq!(
            stats.acquisitions,
            true_acquisitions.load(Ordering::Relaxed),
            "lost or doubled acquisition counts across stripes"
        );
        prop_assert_eq!(
            stats.try_failures,
            true_try_failures.load(Ordering::Relaxed),
            "lost or doubled try-failure counts across stripes"
        );
        prop_assert_eq!(
            stats.poison_events,
            true_panics.load(Ordering::Relaxed),
            "poison path missed the striped slab"
        );
        // The sum is stable while nothing increments.
        let again = mutex.stats();
        prop_assert_eq!(stats.acquisitions, again.acquisitions);
        // Internal consistency: contended acquisitions are a subset.
        prop_assert!(stats.contended <= stats.acquisitions);
    }
}

/// A policy that only counts how many observations reach `decide` —
/// the monitor-side witness of the sampling gate's cadence.
struct CountingPolicy {
    decides: Arc<AtomicU64>,
}

impl AdaptationPolicy<NativeObservation> for CountingPolicy {
    type Decision = NativeDecision;

    fn decide(&mut self, _obs: NativeObservation) -> Option<NativeDecision> {
        self.decides.fetch_add(1, Ordering::Relaxed);
        None
    }
}

/// Regression: under the new layout the gate must still observe every
/// other unlock. The acquisition count is serialized by the lock
/// itself, so it ticks exactly like the old shared gate: `N` unlocks
/// at sample period 2 produce exactly `N / 2` observations.
#[test]
fn sampling_gate_still_observes_every_other_unlock() {
    for n in [1u64, 2, 3, 10, 101, 256] {
        let decides = Arc::new(AtomicU64::new(0));
        let m = AdaptiveMutex::with_policy(
            0u64,
            Box::new(CountingPolicy { decides: Arc::clone(&decides) }),
            2,
        );
        for _ in 0..n {
            *m.lock() += 1;
        }
        assert_eq!(
            decides.load(Ordering::Relaxed),
            n / 2,
            "gate cadence drifted at n={n}"
        );
    }
}

/// The cadence generalizes: at sample period `p` the gate fires on
/// every `p`-th acquisition, so a run of `N` unlocks observes exactly
/// `N / p` times.
#[test]
fn sampling_gate_cadence_matches_any_period()  {
    for p in [1u64, 3, 7] {
        let decides = Arc::new(AtomicU64::new(0));
        let m = AdaptiveMutex::with_policy(
            0u64,
            Box::new(CountingPolicy { decides: Arc::clone(&decides) }),
            p,
        );
        for _ in 0..100 {
            *m.lock() += 1;
        }
        assert_eq!(decides.load(Ordering::Relaxed), 100 / p, "period {p}");
    }
}

/// Regression: the *failure* stream's cadence must not depend on how
/// many threads generate the failures. The try-failure count used to
/// live in the striped slab and each stripe paced its own gate, so the
/// same total number of failed `try_lock`s produced up to `stripes`×
/// fewer policy observations once the failing threads spread across
/// stripes — the monitor effectively went deaf on bigger machines.
/// The count is now a single global cell: `N` failures at period `p`
/// reach the policy exactly `N / p` times whether one thread or eight
/// produced them.
#[test]
fn try_failure_cadence_is_independent_of_thread_count() {
    const PERIOD: u64 = 4;
    const TOTAL: u64 = 64;
    let mut decides_per_threadcount = Vec::new();
    for threads in [1u64, 2, 8] {
        let decides = Arc::new(AtomicU64::new(0));
        let m = Arc::new(AdaptiveMutex::with_policy(
            0u64,
            Box::new(CountingPolicy { decides: Arc::clone(&decides) }),
            PERIOD,
        ));
        // Hold the lock so every try_lock below fails deterministically.
        let guard = m.lock();
        for _ in 0..threads {
            let m = Arc::clone(&m);
            // One worker at a time: each lands on its own stripe (the
            // pre-fix failure mode) but never races another worker to
            // the policy's non-blocking busy flag, so the observation
            // count stays exact.
            std::thread::spawn(move || {
                for _ in 0..TOTAL / threads {
                    assert!(m.try_lock().is_none(), "lock is held");
                }
            })
            .join()
            .expect("try-failure worker");
        }
        drop(guard);
        assert_eq!(m.stats().try_failures, TOTAL, "{threads} threads");
        decides_per_threadcount.push(decides.load(Ordering::Relaxed));
    }
    assert_eq!(
        decides_per_threadcount[0],
        TOTAL / PERIOD,
        "single-threaded failure stream samples every {PERIOD}th failure"
    );
    assert!(
        decides_per_threadcount.windows(2).all(|w| w[0] == w[1]),
        "sampling cadence drifted with thread count: {decides_per_threadcount:?}"
    );
}
