//! Schedule-exploration stress tests for the lock stack.
//!
//! These tests drive `butterfly_sim::explore` — seeded schedule
//! perturbation with bit-for-bit replay — over the synchronization
//! primitives, with `LockOracle` invariant checkers attached so that
//! mutual exclusion, FIFO handoff, waiting-count conservation and
//! stranded-waiter bugs surface as replayable schedule failures.
//!
//! The first test is the harness's own acceptance check: a deliberately
//! broken test-and-set lock whose race only fires under injected
//! preemption. `explore` must find a failing interleaving, print its
//! seed, and `replay` must reproduce the identical failure twice.

use std::sync::Arc;

use adaptive_locks::{
    agent, with_lock, AdaptiveLock, BlockingLock, Lock, LockOracle, McsLock, ReconfigurableLock,
    SchedKind, WaitingPolicy,
};
use butterfly_sim::{
    self as sim, ctx, Duration, ProcId, ScheduleNoise, SimCell, SimConfig, SimError, SimWord,
};
use cthreads::{fork, Condvar, Semaphore};

/// Base config for the stress workloads: two processors, a scheduling
/// quantum (spin policies + more threads than processors), and schedule
/// recording so failures come back with their decision trace.
fn stress_cfg(noise_seed: u64) -> SimConfig {
    SimConfig {
        quantum: Some(Duration::micros(50)),
        schedule_noise: Some(ScheduleNoise::from_seed(noise_seed)),
        ..SimConfig::butterfly(2)
    }
}

// ---------------------------------------------------------------------------
// Acceptance: explore finds a real race and replays it from a printed seed.
// ---------------------------------------------------------------------------

/// A deliberately broken lock: non-atomic test-then-set with a charged
/// simulator call in the window. Correct under run-to-completion
/// scheduling; broken the moment a preemption lands in the gap.
fn broken_tas_lock(word: &SimWord) {
    loop {
        if word.load() == 0 {
            // The racy window: another thread can observe `word == 0`
            // here if a forced preemption hits this simulator call.
            ctx::advance(Duration::micros(1));
            word.store(1);
            return;
        }
        ctx::yield_now();
    }
}

fn broken_lock_workload() {
    let word = SimWord::new_local(0);
    let inside = SimWord::new_local(0);
    let counter = SimCell::new_local(0u64);
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let (w, ins, c) = (word.clone(), inside.clone(), counter.clone());
            fork(ProcId(0), format!("w{i}"), move || {
                for _ in 0..4 {
                    broken_tas_lock(&w);
                    let holders = ins.fetch_add(1) + 1;
                    assert_eq!(
                        holders, 1,
                        "mutual exclusion violated: {holders} threads in the critical section"
                    );
                    let v = c.read();
                    ctx::advance(Duration::micros(2));
                    c.write(v + 1);
                    ins.fetch_sub(1);
                    w.store(0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(counter.read(), 12);
}

#[test]
fn explore_finds_broken_lock_race_and_replay_reproduces_it() {
    // One processor, no quantum: without noise the only preemption
    // points never fire, so the broken lock looks correct.
    let quiet = SimConfig::butterfly(1);
    sim::run(quiet.clone(), broken_lock_workload).expect("broken lock passes unperturbed");

    // Under injected preemptions the race fires.
    let noisy = SimConfig {
        schedule_noise: Some(ScheduleNoise {
            preempt_ppm: 200_000,
            ..ScheduleNoise::from_seed(0xB0A7)
        }),
        record_schedule: true,
        ..quiet
    };
    let report = sim::explore(noisy.clone(), 24, broken_lock_workload);
    assert!(
        !report.is_clean(),
        "expected schedule noise to expose the broken lock's race in 24 schedules"
    );
    let failure = report.first_failure().expect("at least one failure");
    // The printed seed is the whole replay recipe.
    println!("found failing interleaving: {failure}");
    match &failure.error {
        SimError::ThreadPanicked { message, .. } => {
            assert!(
                message.contains("mutual exclusion violated"),
                "unexpected failure mode: {message}"
            );
        }
        other => panic!("expected a mutual-exclusion panic, got: {other}"),
    }

    // Replaying the printed seed reproduces the identical failure,
    // bit for bit, every time.
    let err1 = sim::replay(noisy.clone(), failure.seed, broken_lock_workload)
        .expect_err("replay must reproduce the failure");
    let err2 = sim::replay(noisy, failure.seed, broken_lock_workload)
        .expect_err("replay must reproduce the failure again");
    assert_eq!(err1.to_string(), err2.to_string());
    assert_eq!(err1.to_string(), failure.error.to_string());
}

// ---------------------------------------------------------------------------
// The fixed lock stack stays clean across many explored schedules.
// ---------------------------------------------------------------------------

fn blocking_lock_workload() {
    let lock = Arc::new(BlockingLock::new_local());
    let oracle = LockOracle::fifo_mutex();
    lock.attach_oracle(oracle.clone());
    let counter = SimCell::new_local(0u64);
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let (l, c) = (lock.clone(), counter.clone());
            fork(ProcId(i % 2), format!("w{i}"), move || {
                for _ in 0..6 {
                    with_lock(l.as_ref(), || {
                        let v = c.read();
                        ctx::advance(Duration::micros(3));
                        c.write(v + 1);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(counter.read(), 18);
    oracle.assert_quiescent();
}

/// 100 consecutive harness iterations over the blocking lock with the
/// full FIFO-mutex oracle attached: the seed suite's fixed lock stack
/// must stay clean under every perturbed schedule.
#[test]
fn blocking_lock_oracle_clean_over_100_schedules() {
    sim::explore(stress_cfg(0x51ED), 100, blocking_lock_workload).assert_clean();
}

fn mcs_lock_workload() {
    let lock = Arc::new(McsLock::new_local());
    let oracle = LockOracle::fifo_mutex();
    lock.attach_oracle(oracle.clone());
    let counter = SimCell::new_local(0u64);
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let (l, c) = (lock.clone(), counter.clone());
            fork(ProcId(i % 2), format!("w{i}"), move || {
                for _ in 0..5 {
                    with_lock(l.as_ref(), || {
                        let v = c.read();
                        ctx::advance(Duration::micros(2));
                        c.write(v + 1);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(counter.read(), 15);
    oracle.assert_quiescent();
}

#[test]
fn mcs_lock_fifo_oracle_clean_under_noise() {
    sim::explore(stress_cfg(0x0DD5), 30, mcs_lock_workload).assert_clean();
}

// ---------------------------------------------------------------------------
// Reconfiguration under contention: no waiter stranded across a swap.
// ---------------------------------------------------------------------------

fn reconfiguration_workload() {
    let lock = Arc::new(ReconfigurableLock::new_local());
    // Scheduler swaps to Priority break the FIFO promise mid-run, so
    // check mutual exclusion / conservation / stranding only.
    let oracle = LockOracle::mutex();
    lock.attach_oracle(oracle.clone());
    let counter = SimCell::new_local(0u64);
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let (l, c) = (lock.clone(), counter.clone());
            fork(ProcId(i % 2), format!("w{i}"), move || {
                for _ in 0..6 {
                    l.lock();
                    let v = c.read();
                    ctx::advance(Duration::micros(4));
                    c.write(v + 1);
                    l.unlock();
                }
            })
        })
        .collect();
    // The adaptation agent: swap waiting policy and scheduler while the
    // workers contend. No waiter may be stranded across a swap.
    for i in 0..6 {
        ctx::advance(Duration::micros(15));
        let policy = if i % 2 == 0 {
            WaitingPolicy::pure_blocking()
        } else {
            WaitingPolicy::combined(5)
        };
        lock.configure_policy(agent(), policy).expect("attrs unowned");
        lock.configure_scheduler(if i % 2 == 0 {
            SchedKind::Priority
        } else {
            SchedKind::Fcfs
        });
    }
    for h in handles {
        h.join();
    }
    assert_eq!(counter.read(), 18);
    assert_eq!(lock.sense_waiting(), 0, "waiter stranded across reconfiguration");
    oracle.assert_quiescent();
}

#[test]
fn reconfiguration_under_contention_strands_no_waiter() {
    sim::explore(stress_cfg(0x5EC5), 30, reconfiguration_workload).assert_clean();
}

fn adaptive_lock_workload() {
    let lock = Arc::new(AdaptiveLock::new_local());
    // SimpleAdapt reconfigures the waiting policy only; the scheduler
    // stays FCFS, so the full FIFO-handoff promise must hold even while
    // the feedback loop rewrites spin counts mid-contention.
    let oracle = LockOracle::fifo_mutex();
    lock.attach_oracle(oracle.clone());
    let counter = SimCell::new_local(0u64);
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let (l, c) = (lock.clone(), counter.clone());
            fork(ProcId(i % 2), format!("w{i}"), move || {
                for _ in 0..6 {
                    with_lock(l.as_ref(), || {
                        let v = c.read();
                        ctx::advance(Duration::micros(3));
                        c.write(v + 1);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(counter.read(), 18);
    oracle.assert_quiescent();
}

#[test]
fn adaptive_lock_invariants_hold_mid_reconfiguration() {
    sim::explore(stress_cfg(0xADA7), 30, adaptive_lock_workload).assert_clean();
}

// ---------------------------------------------------------------------------
// cthreads primitives under the probe interface.
// ---------------------------------------------------------------------------

fn semaphore_workload() {
    let sem = Arc::new(Semaphore::new_local(2));
    let oracle = LockOracle::semaphore(2);
    sem.attach_probe(oracle.clone());
    let active = SimWord::new_local(0);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let (s, a) = (sem.clone(), active.clone());
            fork(ProcId(i % 2), format!("w{i}"), move || {
                for _ in 0..4 {
                    s.acquire();
                    let now_active = a.fetch_add(1) + 1;
                    assert!(now_active <= 2, "semaphore overcommitted: {now_active} active");
                    ctx::advance(Duration::micros(3));
                    a.fetch_sub(1);
                    s.release();
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(sem.permits(), 2);
    oracle.assert_quiescent();
}

#[test]
fn semaphore_probe_stays_clean_under_noise() {
    sim::explore(stress_cfg(0x5E4A), 30, semaphore_workload).assert_clean();
}

fn condvar_workload() {
    let lock = Arc::new(BlockingLock::new_local());
    let cv = Arc::new(Condvar::new_local());
    let oracle = LockOracle::condvar();
    cv.attach_probe(oracle.clone());
    let flag = SimWord::new_local(0);
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let (l, c, f) = (lock.clone(), cv.clone(), flag.clone());
            fork(ProcId(i % 2), format!("waiter{i}"), move || {
                l.lock();
                while f.load() == 0 {
                    c.wait_with(|| l.unlock(), || l.lock());
                }
                l.unlock();
            })
        })
        .collect();
    ctx::advance(Duration::micros(40));
    lock.lock();
    flag.store(1);
    cv.notify_all();
    lock.unlock();
    for h in handles {
        h.join();
    }
    assert_eq!(cv.waiter_count(), 0);
    // Every registered waiter was notified: no lost wakeup shows up as a
    // stranded waiter here (or as a sim-level deadlock explore reports).
    oracle.assert_quiescent();
}

#[test]
fn condvar_probe_loses_no_wakeup_under_noise() {
    sim::explore(stress_cfg(0xC04D), 30, condvar_workload).assert_clean();
}

// ---------------------------------------------------------------------------
// The park/unpark handshake from the checked-in proptest regression.
// ---------------------------------------------------------------------------

/// The exact shape the proptest regression seed pins (`pre_delay = 0`,
/// `post_delay = 0`, `pairs = 2`), now additionally run under schedule
/// noise: the unpark permit must never be lost however dispatch,
/// preemption, or timer delivery is perturbed.
fn park_handshake_workload() {
    let me = ctx::current();
    let acks = SimWord::new_local(0);
    let acks2 = acks.clone();
    let waker = fork(ProcId(1), "waker", move || {
        for round in 0..2u64 {
            ctx::advance(Duration::micros(1));
            ctx::unpark(me);
            // Permits do not stack: wait for the ack before re-arming.
            while acks2.load() <= round {
                ctx::sleep(Duration::micros(1));
            }
        }
    });
    for _ in 0..2 {
        ctx::park();
        acks.fetch_add(1);
    }
    waker.join();
    assert_eq!(acks.load(), 2);
}

#[test]
fn park_unpark_handshake_survives_exploration() {
    sim::explore(stress_cfg(0xAC4E), 50, park_handshake_workload).assert_clean();
}
