//! Property-based tests of the fairness workload's per-thread
//! accounting: no engine — including a mid-run-switching adaptive one —
//! ever loses or invents an operation, and Jain's index behaves.

use adaptive_native::{LockAlgorithm, PolicyChoice};
use proptest::prelude::*;
use workloads::{jains_index, run_fairness, Backend, FairnessSpec};

/// Strategy: every engine family, including an AlgoAdaptive tuned to
/// switch algorithms mid-run (high_water 1, patience 1 trips on the
/// first sign of contention).
fn any_policy() -> impl Strategy<Value = PolicyChoice> {
    prop_oneof![
        Just(PolicyChoice::Algorithm(LockAlgorithm::SpinPark)),
        Just(PolicyChoice::Algorithm(LockAlgorithm::Ticket)),
        Just(PolicyChoice::Algorithm(LockAlgorithm::Queue)),
        Just(PolicyChoice::Algorithm(LockAlgorithm::Combining)),
        (1u32..32).prop_map(PolicyChoice::FixedSpin),
        Just(PolicyChoice::PureBlocking),
        (1u64..4, 1u32..16).prop_map(|(threshold, n)| PolicyChoice::Adaptive { threshold, n }),
        Just(PolicyChoice::AlgoAdaptive { high_water: 1, patience: 1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    /// Per-thread op counts sum exactly to threads x iters for every
    /// engine and workload shape — a mid-run algorithm switch must not
    /// drop or double-count an acquisition, and the row's aggregates
    /// must agree with the per-thread samples they summarize.
    #[test]
    fn per_thread_ops_sum_exactly(
        policy in any_policy(),
        threads in 1usize..5,
        group_a in 0usize..5,
        iters in 1u32..32,
        imbalanced in any::<bool>(),
        ncs_iters in 0u32..200,
    ) {
        let spec = FairnessSpec {
            threads,
            group_a,
            iters,
            cs_iters_a: 200,
            cs_iters_b: if imbalanced { 600 } else { 200 },
            ncs_iters,
            policy,
            seed: 7,
        };
        let point = run_fairness(Backend::Native, &spec);
        let expected = threads as u64 * iters as u64;
        let total: u64 = point.per_thread_ops.iter().sum();
        prop_assert_eq!(total, expected, "policy {}", policy.label());
        prop_assert_eq!(point.per_thread_ops.len(), threads);
        for &ops in &point.per_thread_ops {
            prop_assert_eq!(ops, iters as u64);
        }
        prop_assert!(point.fairness_index > 0.0 && point.fairness_index <= 1.0 + 1e-9);
        prop_assert!(point.thread_spread >= 1.0 - 1e-9);
        prop_assert!(point.max_thread_ops_per_sec >= point.min_thread_ops_per_sec);
    }
}

#[test]
fn jains_index_is_one_for_identical_threads() {
    assert!((jains_index(&[5.0; 8]) - 1.0).abs() < 1e-12);
    assert!((jains_index(&[123.4]) - 1.0).abs() < 1e-12);
}

#[test]
fn jains_index_penalizes_constructed_imbalance() {
    // One thread does all the work: index collapses toward 1/n.
    let starved = jains_index(&[100.0, 0.0, 0.0, 0.0]);
    assert!((starved - 0.25).abs() < 1e-12, "got {starved}");
    // Mild skew lands strictly between 1/n and 1.
    let skewed = jains_index(&[3.0, 1.0]);
    assert!(skewed < 1.0 && skewed > 0.5, "got {skewed}");
}
