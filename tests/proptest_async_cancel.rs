//! Property tests of async cancellation safety: dropping a `lock()`
//! future mid-wait — the exact thing `asyncx::timeout` does on expiry —
//! must never lose a waker (stranding a parked neighbour), never leak a
//! waiter-count, and never break counter conservation, under any mix of
//! poll-vs-park policy, runtime flavor, task count, and cancel timing.
//!
//! The stats ledger is asserted *exactly*, not as an inequality:
//! `acquisitions` increments once per guard actually handed to a
//! caller, so it must equal the tasks' own success count, and every
//! timed-out attempt must surface as exactly one `cancellations` or
//! `cancelled_grants` tick (the timeout future polls the lock future
//! before its timer, so an `Err(Elapsed)` always drops a started wait).

#![cfg(feature = "async")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adaptive_objects::asyncx::{self, AsyncAdaptiveMutex, Runtime};
use proptest::prelude::*;

/// Per-op cancel plan: `None` is a plain `lock().await`; `Some(n)` races
/// the lock future against an `n`-nanosecond deadline and drops it on
/// expiry. Precomputed so the async workers stay deterministic.
fn cancel_plans(
    seed: u64,
    tasks: usize,
    iters: u64,
    one_in: u64,
    max_timeout_nanos: u64,
) -> Vec<Vec<Option<u64>>> {
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..tasks)
        .map(|_| {
            (0..iters)
                .map(|_| {
                    let r = step();
                    (r % one_in == 0).then(|| 1 + r % max_timeout_nanos)
                })
                .collect()
        })
        .collect()
}

/// Run `plans` against `mutex` on `rt`; returns (succeeded, timed_out)
/// summed over all tasks. Each success holds the guard across one
/// executor yield, the same critical-section shape as
/// `workloads::run_async_plans`, so waits genuinely park.
fn run_cancel_workload(
    rt: &Runtime,
    mutex: &Arc<AsyncAdaptiveMutex<u64>>,
    plans: Vec<Vec<Option<u64>>>,
) -> (u64, u64) {
    let tasks = plans.len();
    let arrived = Arc::new(AtomicUsize::new(0));
    rt.block_on(async {
        let handles: Vec<_> = plans
            .into_iter()
            .map(|plan| {
                let mutex = Arc::clone(mutex);
                let arrived = Arc::clone(&arrived);
                asyncx::spawn(async move {
                    // Start gate: hold every task at the line so the
                    // cancel timings race real contention, not a
                    // serial warm-up.
                    arrived.fetch_add(1, Ordering::AcqRel);
                    while arrived.load(Ordering::Acquire) < tasks {
                        asyncx::yield_now().await;
                    }
                    let mut done = 0u64;
                    let mut timed_out = 0u64;
                    for op in plan {
                        match op {
                            Some(nanos) => {
                                let deadline = Duration::from_nanos(nanos);
                                match asyncx::timeout(deadline, mutex.lock()).await {
                                    Ok(mut guard) => {
                                        *guard += 1;
                                        asyncx::yield_now().await;
                                        drop(guard);
                                        done += 1;
                                    }
                                    Err(asyncx::Elapsed) => timed_out += 1,
                                }
                            }
                            None => {
                                let mut guard = mutex.lock().await;
                                *guard += 1;
                                asyncx::yield_now().await;
                                drop(guard);
                                done += 1;
                            }
                        }
                    }
                    (done, timed_out)
                })
            })
            .collect();
        let mut total = (0u64, 0u64);
        for h in handles {
            // A lost waker would strand a parked task and hang this
            // join; completion of every handle IS the no-stranded-
            // waiter property.
            let (done, timed_out) = h.await;
            total.0 += done;
            total.1 += timed_out;
        }
        total
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// For any seed, task count, cancel rate, deadline range, waiting
    /// policy, and runtime flavor: racing `lock()` futures against
    /// deadlines and dropping the losers leaves no queued waiter, no
    /// waiter-count leak, an unlocked mutex, an exactly-conserved
    /// counter, and a stats ledger that accounts for every attempt.
    #[test]
    fn cancelled_lock_futures_never_strand_or_lose_ops(
        seed in any::<u64>(),
        tasks in 2usize..5,
        iters in 8u64..40,
        one_in in 2u64..6,
        max_timeout_nanos in 1_000u64..200_000,
        policy in 0u8..3,
        flavor in 0u8..2,
    ) {
        let mutex = Arc::new(match policy {
            // Pure park: every contended wait registers a waker, the
            // hardest path for cancellation.
            0 => AsyncAdaptiveMutex::with_poll_budget(0u64, 0),
            // Bounded re-poll: cancellations land in the poll phase.
            1 => AsyncAdaptiveMutex::with_poll_budget(0u64, 8),
            // The adaptive default: policy may retune mid-run.
            _ => AsyncAdaptiveMutex::new(0u64),
        });
        let rt = match flavor {
            0 => Runtime::multi_thread(2),
            _ => Runtime::current_thread(),
        };
        let plans = cancel_plans(seed, tasks, iters, one_in, max_timeout_nanos);
        let expected_attempts: u64 = plans.iter().map(|p| p.len() as u64).sum();

        let (done, timed_out) = run_cancel_workload(&rt, &mutex, plans);
        prop_assert_eq!(done + timed_out, expected_attempts);

        // No waiter survives the workload, parked or mid-poll.
        prop_assert_eq!(mutex.waiting_now(), 0);
        prop_assert!(!mutex.has_queued_waiters());
        prop_assert!(!mutex.is_locked());
        prop_assert!(!mutex.is_poisoned());

        // Exact ledger: one acquisition per guard handed out, one
        // cancellation (or cancelled grant, if the drop raced a
        // handoff) per timed-out attempt — nothing lost, nothing
        // double-counted.
        let stats = mutex.stats();
        prop_assert_eq!(stats.acquisitions, done);
        prop_assert_eq!(stats.cancellations + stats.cancelled_grants, timed_out);

        // Counter conservation: every success incremented exactly once,
        // cancelled attempts exactly zero times.
        let mutex = Arc::try_unwrap(mutex).map_err(|_| ()).expect("all tasks joined");
        prop_assert_eq!(mutex.into_inner(), done);
    }
}

/// Deterministic waker-handoff check: while one task holds the lock
/// across several yields, a doomed waiter with a too-short deadline
/// parks behind it and cancels; the patient waiters behind the
/// cancelled node must still be granted the lock. If pruning the
/// abandoned node dropped a live waker, this test would hang rather
/// than fail.
#[test]
fn cancelling_a_parked_waiter_does_not_strand_its_neighbours() {
    for flavor in ["multi", "current"] {
        let rt = match flavor {
            "multi" => Runtime::multi_thread(2),
            _ => Runtime::current_thread(),
        };
        // Pure park so every waiter is a queue node, never a re-poller.
        let mutex = Arc::new(AsyncAdaptiveMutex::with_poll_budget(0u64, 0));
        let total = rt.block_on(async {
            let holder = {
                let mutex = Arc::clone(&mutex);
                asyncx::spawn(async move {
                    let mut guard = mutex.lock().await;
                    *guard += 1;
                    for _ in 0..64 {
                        asyncx::yield_now().await;
                    }
                })
            };
            let doomed = {
                let mutex = Arc::clone(&mutex);
                asyncx::spawn(async move {
                    asyncx::timeout(Duration::from_nanos(1), mutex.lock())
                        .await
                        .is_err()
                })
            };
            let patient: Vec<_> = (0..3)
                .map(|_| {
                    let mutex = Arc::clone(&mutex);
                    asyncx::spawn(async move {
                        let mut guard = mutex.lock().await;
                        *guard += 1;
                    })
                })
                .collect();
            assert!(doomed.await, "1ns deadline must expire while parked");
            holder.await;
            for p in patient {
                p.await;
            }
            42u32
        });
        assert_eq!(total, 42, "{flavor}: all waiters joined");
        assert_eq!(mutex.waiting_now(), 0, "{flavor}");
        assert!(!mutex.has_queued_waiters(), "{flavor}");
        assert_eq!(
            Arc::try_unwrap(mutex).map_err(|_| ()).expect("joined").into_inner(),
            4,
            "{flavor}: holder plus three patient waiters"
        );
    }
}
