//! # adaptive-objects
//!
//! A full reproduction of *"Improving Performance by Use of Adaptive
//! Objects: Experimentation with a Configurable Multiprocessor Thread
//! Package"* (Bodhisattwa Mukherjee & Karsten Schwan, Georgia Tech
//! GIT-CC-93/17, HPDC 1993) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! * [`sim`] — deterministic discrete-event simulator of a BBN Butterfly
//!   GP1000-like NUMA multiprocessor;
//! * [`cthreads`] — the Cthreads-like user-level thread package;
//! * [`model`] — the adaptive-object model (attributes, monitors,
//!   policies, feedback loops, `n1 R n2 W` costs);
//! * [`locks`] — the multiprocessor lock family: spin, backoff, ticket,
//!   MCS, blocking, combined, advisory, reconfigurable, and **adaptive**
//!   locks with FCFS/Priority/Handoff schedulers;
//! * [`monitor`] — the thread-monitor substrate and time-series capture;
//! * [`tsp`] — the LMSK branch-and-bound TSP application in its
//!   centralized / distributed / load-balanced forms;
//! * [`workloads`] — synthetic workloads behind the paper's figures;
//! * [`native`] — a real-thread adaptive mutex with the same feedback
//!   loop, usable as an ordinary synchronization primitive;
//! * [`control`] — the operator control plane over the native locks:
//!   circuit-breaker lifecycle supervision, a line-oriented command
//!   router (in-process channel or local socket), and Prometheus-style
//!   snapshots;
//! * [`service`] — the sharded adaptive KV/counter store: every shard
//!   guarded by its own `AdaptiveMutex`, hot-shard write batching via
//!   flat combining, and contention-triggered resharding;
//! * [`asyncx`] (feature `async`, default-on) — the async layer: a
//!   small task runtime, an `AsyncAdaptiveMutex` that adapts between
//!   re-polling and parking with the same feedback loop and
//!   control-plane surface as the native mutex, and the sharded store
//!   served over TCP.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ```
//! use adaptive_objects::prelude::*;
//!
//! let (kind, _) = sim::run(SimConfig::butterfly(2), || {
//!     let lock = AdaptiveLock::new_local();
//!     for _ in 0..8 {
//!         with_lock(&lock, || ctx::advance(Duration::micros(10)));
//!     }
//!     lock.inner().policy().kind()
//! })
//! .unwrap();
//! assert_eq!(kind, LockKind::PureSpin);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use adaptive_control as control;
pub use adaptive_core as model;
pub use adaptive_locks as locks;
pub use adaptive_native as native;
pub use adaptive_service as service;
#[cfg(feature = "async")]
pub use asyncx;
pub use butterfly_sim as sim;
pub use cthreads;
pub use thread_monitor as monitor;
pub use tsp_app as tsp;
pub use workloads;

/// The most common imports for working with the simulated lock family.
pub mod prelude {
    pub use adaptive_core::{AdaptationPolicy, FeedbackLoop, OpCost, SamplingGate};
    pub use adaptive_locks::{
        with_lock, AdaptiveLock, BlockingLock, Lock, LockKind, ReconfigurableLock, SchedKind,
        SimpleAdapt, SpinLock, WaitingPolicy,
    };
    pub use adaptive_native::AdaptiveMutex;
    pub use butterfly_sim::{self as sim, ctx, Duration, NodeId, ProcId, SimConfig, VirtualTime};
    pub use cthreads::fork;
    pub use tsp_app::{solve_parallel, LockImpl, TspConfig, TspInstance, Variant};
}
