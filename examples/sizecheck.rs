//! Instance-sizing utility: how much branch-and-bound work does a given
//! TSP instance generate? Useful for choosing benchmark instances (the
//! search-tree size of LMSK varies by orders of magnitude across seeds).
//!
//! Run with `cargo run --release --example sizecheck`.

fn main() {
    println!(
        "{:>4} {:>6} {:>8} {:>10} {:>10} {:>12}",
        "n", "seed", "best", "expanded", "generated", "host time"
    );
    for n in [12usize, 16, 20, 24] {
        for seed in [1993u64, 3, 11] {
            let inst = tsp_app::TspInstance::random_euclidean(n, 1000, seed);
            let t = std::time::Instant::now();
            let (best, stats) = tsp_app::solve_sequential(&inst);
            println!(
                "{:>4} {:>6} {:>8} {:>10} {:>10} {:>12?}",
                n,
                seed,
                best,
                stats.expanded,
                stats.generated,
                t.elapsed()
            );
        }
    }
}
