//! Lock schedulers on a client-server pattern: the experiment behind the
//! paper's Section 2 claim that "priority locks exhibit the best
//! performance whereas FCFS locks exhibit the worst" for client-server
//! applications.
//!
//! One high-priority server and five clients share a reconfigurable
//! lock; we swap only the lock's *scheduler component* (FCFS, Priority,
//! Handoff) and measure how long the server waits.
//!
//! Run with `cargo run --release --example client_server`.

use adaptive_objects::workloads::{run_all_schedulers, ClientServerConfig};

fn main() {
    let cfg = ClientServerConfig::default();
    println!(
        "client-server workload: {} clients, {} server requests\n",
        cfg.clients, cfg.server_requests
    );
    println!(
        "{:<12} {:>18} {:>18} {:>14}",
        "scheduler", "mean server wait", "max server wait", "total run"
    );
    let results = run_all_schedulers(&cfg);
    for r in &results {
        println!(
            "{:<12} {:>15.1} us {:>15.1} us {:>11.2} ms",
            r.scheduler,
            r.mean_server_wait_nanos as f64 / 1e3,
            r.max_server_wait_nanos as f64 / 1e3,
            r.total_nanos as f64 / 1e6
        );
    }
    let fcfs = results.iter().find(|r| r.scheduler == "fcfs").unwrap();
    let prio = results.iter().find(|r| r.scheduler == "priority").unwrap();
    println!(
        "\npriority scheduling cuts the server's mean lock wait by {:.0}x vs FCFS — \
         the application-specific lock scheduler the paper argues kernels should let you install",
        fcfs.mean_server_wait_nanos as f64 / prio.mean_server_wait_nanos as f64
    );
}
