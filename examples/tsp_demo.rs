//! The paper's headline experiment in miniature: the LMSK
//! branch-and-bound TSP on 10 simulated processors, in all three
//! shared-abstraction structures, with blocking vs adaptive locks.
//!
//! Run with `cargo run --release --example tsp_demo` (add
//! `-- <cities> <seed>` to change the instance; default 16 cities).

use adaptive_objects::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let cities: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1993);

    let inst = TspInstance::random_euclidean(cities, 1000, seed);
    println!("TSP: {cities} cities (seed {seed}), 10 searchers, one per processor\n");

    let mut oracle = None;
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>8}",
        "variant", "blocking ms", "adaptive ms", "improvement", "nodes"
    );
    for variant in Variant::ALL {
        let mut row = Vec::new();
        let mut nodes = 0;
        for lock_impl in [
            LockImpl::Blocking,
            LockImpl::Adaptive { threshold: 12, n: 20 },
        ] {
            let inst2 = inst.clone();
            let (res, _) = sim::run(SimConfig::butterfly(10), move || {
                solve_parallel(
                    &inst2,
                    variant,
                    TspConfig {
                        searchers: 10,
                        lock_impl,
                        ..TspConfig::default()
                    },
                )
            })
            .expect("simulation failed");
            if let Some(o) = oracle {
                assert_eq!(res.best, o, "optimum must not depend on locks");
            } else {
                oracle = Some(res.best);
            }
            nodes = res.stats.expanded;
            row.push(res.elapsed.as_millis_f64());
        }
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>11.1}% {:>8}",
            variant.label(),
            row[0],
            row[1],
            (row[0] - row[1]) / row[0] * 100.0,
            nodes
        );
    }
    println!(
        "\noptimal tour cost: {} (identical across all runs — the locks change the clock, never the answer)",
        oracle.unwrap()
    );
}
