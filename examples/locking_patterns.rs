//! Reproduce a locking-pattern figure at the terminal: trace the
//! waiting-thread counts of `qlock` and `glob-act-lock` during a
//! centralized TSP run (the paper's Figures 4 and 5) and render them as
//! sparklines plus CSV.
//!
//! Run with `cargo run --release --example locking_patterns`.

use adaptive_objects::monitor::{pattern_series, to_long_csv, ChromeTrace};
use adaptive_objects::prelude::*;

fn main() {
    let inst = TspInstance::random_euclidean(16, 1000, 1993);
    let (res, report) = sim::run(SimConfig::butterfly(10), move || {
        solve_parallel(
            &inst,
            Variant::Centralized,
            TspConfig {
                searchers: 10,
                lock_impl: LockImpl::Blocking,
                trace_locks: true,
                ..TspConfig::default()
            },
        )
    })
    .expect("simulation failed");

    let q = pattern_series("qlock/centralized", &res.qlock_trace);
    let a = pattern_series("glob-act-lock/centralized", &res.act_trace);

    println!("locking patterns, centralized TSP (cf. the paper's Figures 4 and 5)\n");
    for s in [&q, &a] {
        println!(
            "{:<28} samples={:<6} mean={:<6.2} max={}",
            s.name,
            s.len(),
            s.mean(),
            s.max()
        );
        println!("  {}\n", s.sparkline(72));
    }

    let csv = to_long_csv(&[q.clone(), a.clone()]);
    let path = std::env::temp_dir().join("locking_patterns.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("full series written to {}", path.display());

    // Bonus: a chrome://tracing / Perfetto view of the whole run —
    // searcher lifetimes as spans, the qlock pattern as a counter track.
    let mut trace = ChromeTrace::new();
    trace.add_thread_spans(&report).add_counter(&q);
    let tpath = std::env::temp_dir().join("locking_patterns.trace.json");
    std::fs::write(&tpath, trace.to_json()).expect("write trace");
    println!("chrome trace written to {} (open in ui.perfetto.dev)", tpath.display());
    println!(
        "(the qlock trace shows sustained waiting — the centralized queue is hot; \
         glob-act-lock only bursts when searchers run dry)"
    );
}
