//! The adaptive mutex on real threads: watch the spin attribute track
//! the workload.
//!
//! Phase 1 is uncontended (the policy configures pure spin); phase 2
//! hammers the mutex from several threads with long holds (spins get
//! cut, waiters park). This is the paper's feedback loop running on
//! `std` atomics rather than the simulator.
//!
//! Run with `cargo run --release --example native_adaptive`.

use adaptive_native::{AdaptiveMutex, NativeSimpleAdapt, SPIN_FOREVER};
use std::sync::Arc;
use std::time::Duration;

fn spin_label(limit: u32) -> String {
    if limit == SPIN_FOREVER {
        "pure spin".to_string()
    } else if limit == 0 {
        "pure blocking".to_string()
    } else {
        format!("combined({limit})")
    }
}

fn main() {
    let m = Arc::new(AdaptiveMutex::with_policy(
        0u64,
        Box::new(NativeSimpleAdapt::new(0, 16)),
        1, // sample every unlock so the demo converges quickly
    ));

    // Phase 1: single-threaded.
    for _ in 0..64 {
        *m.lock() += 1;
    }
    println!(
        "after the uncontended phase: spin attribute = {}",
        spin_label(m.spin_limit())
    );

    // Phase 2: contention with long holds. A watcher samples the spin
    // attribute while the storm is in flight (once the storm drains, the
    // policy sees zero waiters and flips back toward pure spin — that
    // recovery is itself the point of adaptivity).
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = {
        let (m, stop) = (Arc::clone(&m), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut min_limit = u32::MAX;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                min_limit = min_limit.min(m.spin_limit());
                std::thread::sleep(Duration::from_micros(500));
            }
            min_limit
        })
    };
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for _ in 0..40 {
                    let mut g = m.lock();
                    *g += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let min_limit = watcher.join().unwrap();
    println!(
        "during the contended phase:  spin attribute reached {}",
        spin_label(min_limit)
    );
    println!(
        "after the storm drained:     spin attribute = {}",
        spin_label(m.spin_limit())
    );

    let s = m.stats();
    println!(
        "\ncounter = {}, stats: {} acquisitions / {} contended / {} parked / {} reconfigurations",
        *m.lock(),
        s.acquisitions,
        s.contended,
        s.parked,
        s.reconfigurations
    );
    assert_eq!(*m.lock(), 64 + 6 * 40);
    println!("(no lost updates; the lock retuned itself to match each phase — zero code changes)");
}
