//! The adaptive reader-writer lock: the paper's feedback-loop structure
//! applied to a different mutable attribute (reader vs writer
//! preference) — an instance of its closing future work of adapting
//! "other operating system components".
//!
//! Phase 1 is read-mostly (reader preference is right: maximum read
//! sharing); phase 2 is write-heavy (writer preference is right: bounded
//! writer latency). The lock's built-in monitor watches the waiting mix
//! and flips the preference attribute by itself.
//!
//! Run with `cargo run --release --example adaptive_rwlock`.

use adaptive_objects::locks::{AdaptiveRwLock, RwPolicy};
use adaptive_objects::prelude::*;
use std::sync::Arc;

fn main() {
    let (out, _) = sim::run(SimConfig::butterfly(6), || {
        let rw = Arc::new(AdaptiveRwLock::new_local());
        let initial = rw.inner().peek_policy();

        // Phase 1: read-mostly (one occasional writer, five readers).
        let readers: Vec<_> = (1..6)
            .map(|p| {
                let rw = Arc::clone(&rw);
                fork(ProcId(p), format!("reader{p}"), move || {
                    for _ in 0..30 {
                        rw.read(|| ctx::advance(Duration::micros(60)));
                        ctx::advance(Duration::micros(20));
                    }
                })
            })
            .collect();
        for _ in 0..5 {
            rw.write(|| ctx::advance(Duration::micros(30)));
            ctx::advance(Duration::micros(400));
        }
        for r in readers {
            r.join();
        }
        let after_reads = rw.inner().peek_policy();

        // Phase 2: write-heavy (five writers hammering).
        let writers: Vec<_> = (1..6)
            .map(|p| {
                let rw = Arc::clone(&rw);
                fork(ProcId(p), format!("writer{p}"), move || {
                    for _ in 0..20 {
                        rw.write(|| ctx::advance(Duration::micros(120)));
                    }
                })
            })
            .collect();
        for _ in 0..20 {
            rw.write(|| ctx::advance(Duration::micros(120)));
        }
        for w in writers {
            w.join();
        }
        let stats = rw.stats();
        (initial, after_reads, stats)
    })
    .expect("simulation failed");

    let (initial, after_reads, stats) = out;
    println!("initial policy:            {initial:?}");
    println!("after the read-mostly phase: {after_reads:?} (readers keep sharing)");
    println!(
        "totals: {} read / {} write acquisitions, {} policy reconfigurations",
        stats.read_acquisitions, stats.write_acquisitions, stats.reconfigurations
    );
    assert_eq!(initial, RwPolicy::ReaderPreferring);
    assert!(
        stats.reconfigurations >= 1,
        "the write storm should have flipped the preference at least once"
    );
    println!(
        "\nthe lock flipped its preference attribute {} time(s) to match the workload — \
         the same monitor/policy/reconfigure loop as the adaptive mutex, on a different attribute",
        stats.reconfigurations
    );
}
