//! Quickstart: an adaptive lock on the simulated Butterfly.
//!
//! Builds a 4-processor machine, runs a lock through two workload
//! phases — first uncontended, then heavily contended — and prints the
//! lock's configuration trajectory: the feedback loop drives it to pure
//! spin while nobody waits and toward blocking when the queue deepens.
//!
//! Run with `cargo run --release --example quickstart`.

use adaptive_objects::prelude::*;
use adaptive_locks::SimpleAdapt;
use std::sync::Arc;

fn main() {
    let (summary, report) = sim::run(SimConfig::butterfly(4), || {
        let lock = Arc::new(AdaptiveLock::with_policy(
            ctx::current_node(),
            Box::new(SimpleAdapt::new(1, 5)),
            2, // sample every other unlock, as in the paper
        ));

        // Phase 1: a single thread uses the lock; no contention.
        for _ in 0..20 {
            with_lock(lock.as_ref(), || ctx::advance(Duration::micros(10)));
        }
        let phase1 = lock.inner().policy().kind();

        // Phase 2: four threads hammer long critical sections.
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let lock = Arc::clone(&lock);
                fork(ProcId(p), format!("hammer{p}"), move || {
                    for _ in 0..25 {
                        with_lock(lock.as_ref(), || ctx::advance(Duration::millis(1)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }

        let log = lock.inner().transition_log();
        let stats = lock.stats();
        let loop_stats = lock.loop_stats();
        (phase1, log, stats, loop_stats)
    })
    .expect("simulation failed");

    let (phase1, log, stats, loop_stats) = summary;
    println!("after the uncontended phase the lock is: {phase1:?}");
    println!(
        "lock statistics: {} acquisitions, {} contended, max {} waiting, {} reconfigurations",
        stats.acquisitions, stats.contended, stats.max_waiting, stats.reconfigurations
    );
    println!(
        "feedback loop: {} observations -> {} decisions",
        loop_stats.observations, loop_stats.decisions
    );
    println!("\nconfiguration trajectory (paper: M --v_i--> P --d_c--> Ψ):");
    for t in log.transitions().iter().take(12) {
        println!(
            "  t={:>9}ns  {}  {:<28} -> {:<28} [{}]",
            t.at_nanos, t.kind, t.from, t.to, t.cost
        );
    }
    if log.len() > 12 {
        println!("  ... {} more transitions", log.len() - 12);
    }
    println!(
        "\nsimulated {} threads, {} events, end time {:.3} ms",
        report.threads,
        report.events,
        report.end_time.as_nanos() as f64 / 1e6
    );
}
