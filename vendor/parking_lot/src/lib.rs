//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns a guard directly). Performance characteristics are
//! std's, not parking_lot's — fine for this workspace, which only uses
//! it as a benchmark baseline.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex and return the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
