//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote`) derive macros for the value-tree
//! `Serialize` / `Deserialize` traits of the sibling `serde` stand-in.
//! Supported shapes — the ones this workspace actually uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]` and
//!   `#[serde(skip_serializing_if = "path")]`),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   like real serde's default representation).
//!
//! Generics are not supported; deriving on a generic type is a compile
//! error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the value-tree `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Rust")
}

/// Derive the value-tree `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Rust")
}

// ---------------------------------------------------------------- model

struct Field {
    name: Option<String>,
    skip: bool,
    skip_if: Option<String>,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------- parse

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (offline stand-in): generic type `{name}` is not supported");
    }

    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item { name, body }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Extract serde attribute flags from the attribute tokens preceding a
/// field or variant. Returns (skip, skip_serializing_if path).
fn parse_serde_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, Option<String>) {
    let mut skip = false;
    let mut skip_if = None;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let a: Vec<TokenTree> = args.stream().into_iter().collect();
                    let mut j = 0;
                    while j < a.len() {
                        match &a[j] {
                            TokenTree::Ident(id) if id.to_string() == "skip" => skip = true,
                            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                                // skip_serializing_if = "Path::pred"
                                if let Some(TokenTree::Literal(lit)) = a.get(j + 2) {
                                    skip_if = Some(unquote(&lit.to_string()));
                                    j += 2;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
        }
        *i += 2;
    }
    (skip, skip_if)
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, skip_if) = parse_serde_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        // Skip `: Type` up to the next top-level comma. `<`/`>` need no
        // depth tracking because generics never contain top-level commas
        // outside their own angle brackets — track them anyway.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth <= 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name: Some(name),
            skip,
            skip_if,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Group(_) => {}
            TokenTree::Punct(p) if p.as_char() == ',' && depth <= 0 => n += 1,
            _ => {}
        }
    }
    // Trailing comma: `(u64,)` still has one field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        n -= 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _ = parse_serde_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip optional discriminant `= expr` and the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// -------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n",
            );
            for f in fields {
                let fname = f.name.as_ref().unwrap();
                if f.skip {
                    continue;
                }
                if let Some(pred) = &f.skip_if {
                    s.push_str(&format!(
                        "if !{pred}(&self.{fname}) {{ obj.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname}))); }}\n"
                    ));
                } else {
                    s.push_str(&format!(
                        "obj.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname})));\n"
                    ));
                }
            }
            s.push_str("::serde::Value::Object(obj)");
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(x0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(x0))]),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| f.name.clone().unwrap())
                            .collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                let fname = f.name.as_ref().unwrap();
                                format!(
                                    "(\"{fname}\".to_string(), ::serde::Serialize::to_value({fname}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("let _ = v; Ok({name})"),
        Body::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(items.get({i}).unwrap_or(&::serde::Value::Null))?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError(format!(\"expected array for {name}\")))?;\nOk({name}({}))",
                gets.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_ref().unwrap();
                    if f.skip {
                        format!("{fname}: ::core::default::Default::default()")
                    } else {
                        // Absent keys deserialize as Null, so Option
                        // fields default to None and anything else
                        // reports the missing field.
                        format!(
                            "{fname}: ::serde::Deserialize::from_value(v.get(\"{fname}\").unwrap_or(&::serde::Value::Null)).map_err(|e| ::serde::DeError(format!(\"field {fname}: {{e}}\")))?"
                        )
                    }
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => return Ok({name}::{vname}),\n"));
                    }
                    VariantShape::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => return Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(items.get({i}).unwrap_or(&::serde::Value::Null))?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ let items = inner.as_array().ok_or_else(|| ::serde::DeError(format!(\"expected array for {name}::{vname}\")))?; return Ok({name}::{vname}({})); }}\n",
                            gets.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fname = f.name.as_ref().unwrap();
                                if f.skip {
                                    format!("{fname}: ::core::default::Default::default()")
                                } else {
                                    format!(
                                        "{fname}: ::serde::Deserialize::from_value(inner.get(\"{fname}\").unwrap_or(&::serde::Value::Null))?"
                                    )
                                }
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => return Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let Some(s) = v.as_str() {{\n    match s {{\n{unit_arms}        _ => {{}}\n    }}\n}}\nif let Some(pairs) = v.as_object() {{\n    if pairs.len() == 1 {{\n        let (tag, inner) = (&pairs[0].0, &pairs[0].1);\n        let _ = inner;\n        match tag.as_str() {{\n{tagged_arms}            _ => {{}}\n        }}\n    }}\n}}\nErr(::serde::DeError(format!(\"no variant of {name} matches {{v:?}}\")))"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
    )
}
