//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! real `rand` cannot be downloaded. This crate implements the small,
//! seeded subset the workspace actually uses — `StdRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen` — on top of splitmix64/xoshiro256**.
//! Streams are deterministic per seed (which the workspace relies on for
//! reproducible TSP instances) but make no attempt to match upstream
//! `rand`'s value streams.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value from `next` 64-bit draws.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that [`Rng::gen_range`] accepts (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as u128 + v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Sample a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator seeded via splitmix64 — the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1u32..=5);
            assert!((1..=5).contains(&w));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn bool_and_f64_sampling() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..64 {
            if r.gen::<bool>() {
                seen_true = true;
            } else {
                seen_false = true;
            }
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(seen_true && seen_false);
    }
}
