//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`)
//! with a simple wall-clock timer instead of full statistics. Each
//! benchmark runs a short calibration pass, then a fixed number of
//! timed iterations, and prints `group/name  median-ish ns/iter`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier (subset of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples (the real crate's meaning is
    /// statistical; here it directly bounds timed repetitions).
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(2);
        self
    }

    /// Time one closure under this group.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut BenchmarkGroup {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: self.sample_size as u64,
        };
        f(&mut b);
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        if b.iters == 0 {
            println!("bench {label:<40} (no iterations)");
        } else {
            let ns = b.total.as_nanos() / u128::from(b.iters);
            println!("bench {label:<40} {ns:>12} ns/iter ({} iters)", b.iters);
        }
        self
    }

    /// End the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: aim for a modest per-sample duration so fast
        // routines are batched and slow ones run few times.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let samples = self.budget;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.total += t.elapsed();
            self.iters += per_sample as u64;
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert!(calls > 0);
    }
}
