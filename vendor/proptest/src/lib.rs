//! Offline stand-in for `proptest`.
//!
//! A small, deterministic property-testing runner covering the subset of
//! the real crate this workspace uses:
//!
//! - `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy) {..} }`
//! - range strategies (`1u64..8`), [`any`], [`Just`], `prop_map`,
//!   [`prop_oneof!`], tuples of strategies, [`collection::vec`]
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! - shrinking of failing inputs toward minimal counterexamples
//! - replay of `*.proptest-regressions` files: any `# shrinks to
//!   name = value, ...` comment whose parameter names match a test's
//!   parameters is re-run first, so checked-in regressions stay live
//!
//! Unlike the real crate, case generation is **deterministic by
//! default** (seeded from the test name) so CI runs are reproducible;
//! set `PROPTEST_SEED` to explore a different schedule of inputs.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

// ----------------------------------------------------------------- rng

/// Deterministic generator used to produce test cases (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a fresh generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ------------------------------------------------------------ strategy

/// A generator of test values, with optional shrinking and parsing of
/// persisted regression text.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Clone + Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate "smaller" values to try when `value` fails; may be empty.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Parse one `name = value` fragment from a regression file, if this
    /// strategy knows how to (scalars only).
    fn parse_scalar(&self, _text: &str) -> Option<Self::Value> {
        None
    }

    /// Map generated values through `f`. The mapped strategy does not
    /// shrink (the inverse of `f` is unknown).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Box this strategy for use in heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe boxed strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Clone + Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
    fn parse_scalar(&self, text: &str) -> Option<V> {
        (**self).parse_scalar(text)
    }
}

/// Strategy that always yields a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies (see [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Clone + Debug> Union<V> {
    /// Build a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Clone + Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        // Shrink within whichever arms recognise the value is unknown;
        // offer every arm's shrinks (wrong-arm candidates simply won't
        // reproduce the failure and are discarded by the runner).
        self.options.iter().flat_map(|o| o.shrink(value)).collect()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let v = *value;
                if v > self.start {
                    out.push(self.start);
                    let mid = self.start + (v - self.start) / 2;
                    if mid != self.start && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != self.start {
                        out.push(v - 1);
                    }
                }
                out
            }
            fn parse_scalar(&self, text: &str) -> Option<$t> {
                text.trim().parse::<$t>().ok().filter(|v| self.contains(v))
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker strategy for "any value of `T`" (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-domain strategy for `T`, like `proptest::prelude::any`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    out.push(v / 2);
                    out.push(v - 1);
                    out.dedup();
                }
                out
            }
            fn parse_scalar(&self, text: &str) -> Option<$t> {
                text.trim().parse::<$t>().ok()
            }
        }
    )*};
}

any_uint_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
    fn parse_scalar(&self, text: &str) -> Option<bool> {
        text.trim().parse::<bool>().ok()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone + Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Shorter vectors first (dropping suffix, then single items).
            if value.len() > self.size.start {
                out.push(value[..self.size.start].to_vec());
                let half = self.size.start.max(value.len() / 2);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len().min(8) {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // Then element-wise shrinks (bounded fan-out).
            for (i, item) in value.iter().enumerate().take(8) {
                for cand in self.element.shrink(item) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

// ----------------------------------------------------- tuple strategies

/// Strategy tuples: the unit of input to one property test, with
/// component-wise shrinking and regression parsing.
pub trait TestInput {
    /// Tuple of component values.
    type Value: Clone + Debug;
    /// Produce one tuple of values.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
    /// Shrink one component at a time, holding the others fixed.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
    /// Parse one persisted `value` text per component.
    fn parse_parts(&self, parts: &[&str]) -> Option<Self::Value>;
}

macro_rules! tuple_input {
    ($(($($s:ident / $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> TestInput for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }

            fn parse_parts(&self, parts: &[&str]) -> Option<Self::Value> {
                let mut it = parts.iter();
                Some(($(self.$idx.parse_scalar(it.next()?)?,)+))
            }
        }

        // Strategy tuples are also plain strategies, so code can write
        // `(1u64..8, 1u32..32).prop_map(|(a, b)| ..)`.
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                TestInput::generate(self, rng)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                TestInput::shrink(self, value)
            }
        }
    )*};
}

tuple_input! {
    (A/0),
    (A/0, B/1),
    (A/0, B/1, C/2),
    (A/0, B/1, C/2, D/3),
    (A/0, B/1, C/2, D/3, E/4),
    (A/0, B/1, C/2, D/3, E/4, F/5),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7),
}

// --------------------------------------------------------------- config

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Cap on shrinking iterations after a failure.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

// --------------------------------------------------------------- runner

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn base_seed(test_name: &str) -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| fnv64(s.as_bytes())),
        Err(_) => fnv64(test_name.as_bytes()),
    }
}

/// Read `name = value` entries persisted in a `*.proptest-regressions`
/// file and return those whose names match `param_names` exactly.
fn replay_entries(regressions: &std::path::Path, param_names: &[&str]) -> Vec<Vec<String>> {
    let Ok(text) = std::fs::read_to_string(regressions) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((_, shrunk)) = line.split_once("# shrinks to ") else {
            continue;
        };
        let mut names = Vec::new();
        let mut values = Vec::new();
        let mut ok = true;
        for frag in shrunk.split(", ") {
            match frag.split_once(" = ") {
                Some((n, v)) => {
                    names.push(n.trim());
                    values.push(v.trim().to_string());
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && names == param_names {
            out.push(values);
        }
    }
    out
}

fn persist_failure(regressions: &std::path::Path, shrunk: &str) {
    if std::env::var_os("PROPTEST_NO_PERSIST").is_some() {
        return;
    }
    if let Ok(text) = std::fs::read_to_string(regressions) {
        if text.contains(shrunk) {
            return;
        }
    }
    let header = if regressions.exists() {
        String::new()
    } else {
        "# Seeds for failure cases proptest has generated in the past. It is\n\
         # automatically read and these particular cases re-run before any\n\
         # novel cases are generated.\n\n"
            .to_string()
    };
    let line = format!("{header}cc {:016x} # shrinks to {shrunk}\n", fnv64(shrunk.as_bytes()));
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(regressions)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

fn format_shrunk<V: Debug>(param_names: &[&str], value: &V) -> String {
    // `value` is a tuple; Debug prints `(a, b, c)`. Splitting that back
    // apart generically is fragile, so format components via the names
    // count: single param tuples print as `(v,)`.
    let text = format!("{value:?}");
    let inner = text
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .unwrap_or(&text);
    let inner = inner.strip_suffix(',').unwrap_or(inner).trim();
    if param_names.len() == 1 {
        return format!("{} = {}", param_names[0], inner);
    }
    // Split on top-level ", " only (ignore nested brackets/parens).
    let mut parts = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                parts.push(inner[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(inner[start..].trim());
    if parts.len() == param_names.len() {
        param_names
            .iter()
            .zip(parts)
            .map(|(n, v)| format!("{n} = {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    } else {
        format!("{} = {}", param_names.join("/"), inner)
    }
}

/// Drive one property test: replay persisted regressions, then run
/// `cfg.cases` generated cases, shrinking any failure to a minimal
/// counterexample before panicking. Called by the [`proptest!`] macro.
pub fn run_proptest<I: TestInput>(
    cfg: &ProptestConfig,
    source_file: &str,
    test_name: &str,
    param_names: &[&str],
    input: &I,
    run: impl Fn(I::Value),
) {
    let fails = |value: &I::Value| -> Option<String> {
        let v = value.clone();
        match catch_unwind(AssertUnwindSafe(|| run(v))) {
            Ok(()) => None,
            Err(panic) => Some(panic_message(&panic)),
        }
    };

    let regressions = regression_path(source_file);

    // 1. Replay persisted counterexamples whose names match this test.
    for values in replay_entries(&regressions, param_names) {
        let parts: Vec<&str> = values.iter().map(String::as_str).collect();
        let Some(value) = input.parse_parts(&parts) else {
            continue;
        };
        if let Some(msg) = fails(&value) {
            panic!(
                "persisted regression failed for `{test_name}`\n\
                 input: {value:?}\n{msg}"
            );
        }
    }

    // 2. Generated cases.
    let seed = base_seed(test_name);
    for case in 0..cfg.cases {
        let mut rng = TestRng::new(seed.wrapping_add(u64::from(case).wrapping_mul(0x9e37)));
        let value = input.generate(&mut rng);
        let Some(first_msg) = fails(&value) else {
            continue;
        };

        // Shrink toward a minimal failing input.
        let mut best = value;
        let mut best_msg = first_msg;
        let mut budget = cfg.max_shrink_iters;
        'outer: while budget > 0 {
            for cand in input.shrink(&best) {
                budget = budget.saturating_sub(1);
                if let Some(msg) = fails(&cand) {
                    best = cand;
                    best_msg = msg;
                    continue 'outer;
                }
                if budget == 0 {
                    break;
                }
            }
            break;
        }

        let shrunk = format_shrunk(param_names, &best);
        persist_failure(&regressions, &shrunk);
        panic!(
            "proptest `{test_name}` failed (seed {seed:#x}, case {case})\n\
             minimal input: {shrunk}\n{best_msg}"
        );
    }
}

fn regression_path(source_file: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(source_file);
    let p = if p.is_absolute() {
        p.to_path_buf()
    } else {
        // `file!()` is workspace-root-relative; tests run with the
        // package dir as cwd, which for the root package is the same.
        std::path::PathBuf::from(source_file)
    };
    p.with_extension("proptest-regressions")
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// --------------------------------------------------------------- macros

/// Define property tests (subset of the real `proptest!` macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($param:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let input = ($($strat,)+);
            $crate::run_proptest(
                &cfg,
                file!(),
                stringify!($name),
                &[$(stringify!($param)),+],
                &input,
                |($($param,)+)| { $body },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Assert two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            panic!("assertion failed: {:?} != {:?}", l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            panic!($($fmt)+);
        }
    }};
}

/// Assert two values differ inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            panic!("assertion failed: {:?} == {:?}", l, r);
        }
    }};
}

/// The usual glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (1u32..100, any::<u64>(), collection::vec(0u8..9, 1..5));
        let a: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| TestInput::generate(&strat, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| TestInput::generate(&strat, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn shrinking_reaches_range_start() {
        let strat = (5u64..1000,);
        let mut v = (999u64,);
        // Anything >= 5 "fails": shrink should drive to the minimum.
        while let Some(next) = TestInput::shrink(&strat, &v).into_iter().find(|c| c.0 >= 5) {
            if next.0 < v.0 {
                v = next;
            } else {
                break;
            }
        }
        assert_eq!(v.0, 5);
    }

    #[test]
    fn parse_parts_round_trips() {
        let strat = (0u64..500, 0u64..500, 1u32..8);
        let v = strat.parse_parts(&["0", "0", "2"]).unwrap();
        assert_eq!(v, (0, 0, 2));
        assert!(strat.parse_parts(&["9999", "0", "2"]).is_none());
    }

    #[test]
    fn format_shrunk_matches_regression_style() {
        assert_eq!(
            format_shrunk(&["pre", "post", "pairs"], &(0u64, 0u64, 2u32)),
            "pre = 0, post = 0, pairs = 2"
        );
        assert_eq!(format_shrunk(&["xs"], &(vec![1, 2],)), "xs = [1, 2]");
    }

    #[test]
    fn oneof_picks_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        let mut rng = TestRng::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }
}
