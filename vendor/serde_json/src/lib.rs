//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the value tree defined by the
//! sibling `serde` stand-in. Covers the subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_writer_pretty`],
//! [`from_str`], [`Value`], and the [`json!`] macro.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::{Number, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

// ------------------------------------------------------------- rendering

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                render(item, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Render compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Render two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

/// Render compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: serde::Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error(e.to_string()))
}

/// Render pretty JSON into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: serde::Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error(e.to_string()))
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err("invalid keyword"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::F(f)))
                .map_err(|_| self.err("invalid float"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|u| Value::Number(Number::I(-(u as i64))))
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(|u| Value::Number(Number::U(u)))
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

/// Build a [`Value`] with JSON-like syntax: `json!({ "k": expr })`,
/// `json!([1, 2])`, `json!(null)`, or any `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => {
        serde::Serialize::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = json!({ "name": "w", "n": 3u64, "f": 5.0f64, "flag": true, "none": null });
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            "{\"name\":\"w\",\"n\":3,\"f\":5.0,\"flag\":true,\"none\":null}"
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"name\": \"w\""));
        assert!(pretty.contains("\"f\": 5.0"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn parse_round_trip() {
        let v = json!({ "a": [1u64, 2u64, 3u64], "b": { "c": "x\ny" }, "d": (-4i64), "e": 2.5f64 });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn typed_from_str() {
        let ns: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(ns, vec![1, 2, 3]);
        let s: String = from_str("\"hello\"").unwrap();
        assert_eq!(s, "hello");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
