//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no registry access, so the
//! real `serde` cannot be downloaded. This crate provides value-tree
//! based [`Serialize`] / [`Deserialize`] traits: serialization produces a
//! [`Value`] (re-exported by the sibling `serde_json` stand-in, which
//! renders/parses JSON text). The `derive` feature forwards to a
//! hand-rolled proc macro covering plain structs, tuple structs, and
//! enums — the shapes this workspace actually serializes.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-style number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            // `{:?}` keeps the trailing `.0` on round floats, matching
            // serde_json's rendering of f64 values.
            Number::F(v) => {
                if v.is_finite() {
                    write!(f, "{v:?}")
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A serialized value tree (what `serde_json::Value` re-exports).
///
/// Objects keep insertion order so rendered JSON follows declaration
/// order of the serialized struct.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered key/value pairs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup by key (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    /// Produce the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError(format!("expected {}, got {v:?}", stringify!($t))))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Number(Number::U(v as u64)) } else { Value::Number(Number::I(v)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError(format!("expected {}, got {v:?}", stringify!($t))))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        v.as_f64().ok_or_else(|| DeError(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool().ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys renderable as JSON object keys.
pub trait ObjectKey {
    /// The key text.
    fn key_string(&self) -> String;
}

impl ObjectKey for String {
    fn key_string(&self) -> String {
        self.clone()
    }
}

impl ObjectKey for &str {
    fn key_string(&self) -> String {
        (*self).to_string()
    }
}

macro_rules! key_ints {
    ($($t:ty),*) => {$(
        impl ObjectKey for $t {
            fn key_string(&self) -> String { self.to_string() }
        }
    )*};
}

key_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: ObjectKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.key_string(), v.to_value()))
            .collect();
        // HashMap iteration order is unstable; sort for reproducible output.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: ObjectKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.key_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<u64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn number_rendering_keeps_float_point() {
        assert_eq!(Number::F(5.0).to_string(), "5.0");
        assert_eq!(Number::F(2.5).to_string(), "2.5");
        assert_eq!(Number::U(5).to_string(), "5");
        assert_eq!(Number::I(-5).to_string(), "-5");
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U(1))),
            ("b".into(), Value::Bool(true)),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v["b"].as_bool(), Some(true));
        assert!(v.get("c").is_none());
        assert!(v["c"].is_null());
    }

    #[test]
    fn maps_serialize_sorted() {
        let mut m = HashMap::new();
        m.insert("z", 1u64);
        m.insert("a", 2u64);
        let v = m.to_value();
        let pairs = v.as_object().unwrap();
        assert_eq!(pairs[0].0, "a");
        assert_eq!(pairs[1].0, "z");
    }
}
